package webapi

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/html"
	"l2q/internal/search"
	"l2q/internal/store"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// roundTripFrame encodes one payload into a frame and opens it again.
func roundTripFrame(t *testing.T, kind byte, compressMin int, encode func(*store.Enc)) []byte {
	t.Helper()
	frame := marshalFrame(kind, compressMin, encode)
	payload, err := openFrame(frame, kind)
	if err != nil {
		t.Fatalf("openFrame: %v", err)
	}
	return payload
}

func TestWireFrameRoundTrips(t *testing.T) {
	st := Stats{Domain: "cars", NumEntities: 3, NumPages: 40, NumTerms: 900,
		TotalTokens: 12345, Mu: 2000.5, TopK: 10}
	payload := roundTripFrame(t, wireStats, 0, func(e *store.Enc) { encodeStatsWire(e, st) })
	d := store.NewDec(payload)
	if got := decodeStatsWire(d); got != st || d.Err() != nil || !d.Done() {
		t.Errorf("stats round trip: got %+v want %+v (err %v)", got, st, d.Err())
	}

	sr := SearchResponse{Query: "engine safety", Seed: "volvo", Hits: []SearchHit{
		{PageID: 7, URL: "/page/7.html", Title: "t7", Score: -3.25},
		{PageID: 0, URL: "/page/0.html", Title: "", Score: 0},
	}}
	payload = roundTripFrame(t, wireSearch, 0, func(e *store.Enc) { encodeSearchWire(e, sr) })
	d = store.NewDec(payload)
	if got := decodeSearchWire(d); !reflect.DeepEqual(got, sr) || !d.Done() {
		t.Errorf("search round trip: got %+v want %+v", got, sr)
	}

	freqs := map[string]int{"engine": 12, "safety": 3, "zzz": 0}
	payload = roundTripFrame(t, wireCollFreq, 0, func(e *store.Enc) { encodeCollFreqWire(e, freqs) })
	d = store.NewDec(payload)
	if got := decodeCollFreqWire(d); !reflect.DeepEqual(got, freqs) || !d.Done() {
		t.Errorf("collfreq round trip: got %v want %v", got, freqs)
	}

	ents := []EntityInfo{{ID: 1, Name: "a", SeedQuery: "a q"}, {ID: 9, Name: "b", SeedQuery: "b q"}}
	payload = roundTripFrame(t, wireEntities, 0, func(e *store.Enc) { encodeEntitiesWire(e, ents) })
	d = store.NewDec(payload)
	if got := decodeEntitiesWire(d); !reflect.DeepEqual(got, ents) || !d.Done() {
		t.Errorf("entities round trip: got %v want %v", got, ents)
	}

	evs := []HarvestEvent{
		{Type: "progress", Entity: 4, Iteration: 2, Query: "q x", NewPages: 3, TotalPages: 11},
		{Type: "entity", Entity: 4, Fired: []string{"a", "b"}, Pages: []corpus.PageID{3, 9, 40}},
		{Type: "error", Entity: 5, Error: "unknown entity id 5"},
		{Type: "done", Entities: 2, Failed: 1},
	}
	for _, ev := range evs {
		payload = roundTripFrame(t, wireEvent, 0, func(e *store.Enc) { encodeEventWire(e, ev) })
		d = store.NewDec(payload)
		if got := decodeEventWire(d); !reflect.DeepEqual(got, ev) || !d.Done() {
			t.Errorf("event round trip: got %+v want %+v", got, ev)
		}
	}
}

// TestWireEventJSONParity: a harvest event survives the binary codec
// exactly as it survives encoding/json with its omitempty tags — the
// decoded-value parity that lets the two stream codecs interchange.
func TestWireEventJSONParity(t *testing.T) {
	evs := []HarvestEvent{
		{Type: "progress", Entity: 1, Iteration: 3, Query: "a b", NewPages: 1, TotalPages: 2},
		{Type: "entity", Entity: 2, Fired: []string{"x"}, Pages: []corpus.PageID{1}},
		{Type: "entity", Entity: 3}, // empty slices must round trip as nil
		{Type: "done", Entities: 5, Failed: 0},
	}
	for _, ev := range evs {
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON HarvestEvent
		if err := json.Unmarshal(raw, &viaJSON); err != nil {
			t.Fatal(err)
		}
		payload := roundTripFrame(t, wireEvent, 0, func(e *store.Enc) { encodeEventWire(e, ev) })
		d := store.NewDec(payload)
		viaWire := decodeEventWire(d)
		if !reflect.DeepEqual(viaJSON, viaWire) {
			t.Errorf("codec divergence:\n json %+v\n wire %+v", viaJSON, viaWire)
		}
	}
}

func TestWireFrameCompression(t *testing.T) {
	big := bytes.Repeat([]byte("the same paragraph over and over "), 200)
	framed := marshalFrame(wirePage, 1024, func(e *store.Enc) { e.Raw(big) })
	if framed[len(wireMagic)+1]&wireFlagGzip == 0 {
		t.Fatal("large compressible payload not gzipped")
	}
	if len(framed) >= len(big) {
		t.Errorf("compressed frame (%d bytes) not smaller than payload (%d)", len(framed), len(big))
	}
	payload, err := openFrame(framed, wirePage)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, big) {
		t.Error("gzipped payload did not round trip")
	}

	// Below the threshold: no compression flag, payload verbatim.
	small := []byte("tiny")
	framed = marshalFrame(wirePage, 1024, func(e *store.Enc) { e.Raw(small) })
	if framed[len(wireMagic)+1]&wireFlagGzip != 0 {
		t.Error("sub-threshold payload was gzipped")
	}
	// Threshold 0: compression disabled outright.
	framed = marshalFrame(wirePage, 0, func(e *store.Enc) { e.Raw(big) })
	if framed[len(wireMagic)+1]&wireFlagGzip != 0 {
		t.Error("compressMin=0 still gzipped")
	}
}

func TestWireFrameCorruption(t *testing.T) {
	frame := marshalFrame(wireSearch, 0, func(e *store.Enc) {
		encodeSearchWire(e, SearchResponse{Query: "q", Hits: []SearchHit{{PageID: 3, URL: "u", Title: "t", Score: 1}}})
	})

	if _, err := openFrame([]byte("not a frame"), wireSearch); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := openFrame(frame[:len(frame)-3], wireSearch); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := openFrame(append(append([]byte{}, frame...), 0xff), wireSearch); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := openFrame(frame, wireStats); err == nil {
		t.Error("wrong kind accepted")
	}
	flipped := append([]byte{}, frame...)
	flipped[len(flipped)-1] ^= 0x01
	if _, err := openFrame(flipped, wireSearch); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("payload corruption not caught by CRC: %v", err)
	}
}

func TestFrameReaderStream(t *testing.T) {
	evs := []HarvestEvent{
		{Type: "progress", Entity: 1, Iteration: 1, Query: "a"},
		{Type: "entity", Entity: 1, Fired: []string{"a"}, Pages: []corpus.PageID{2}},
		{Type: "done", Entities: 1},
	}
	var buf bytes.Buffer
	for _, ev := range evs {
		buf.Write(marshalFrame(wireEvent, 0, func(e *store.Enc) { encodeEventWire(e, ev) }))
	}

	fr := newFrameReader(bytes.NewReader(buf.Bytes()))
	for i, want := range evs {
		payload, err := fr.next(wireEvent)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		d := store.NewDec(payload)
		if got := decodeEventWire(d); !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := fr.next(wireEvent); err != io.EOF {
		t.Errorf("clean stream end: %v, want io.EOF", err)
	}

	// A stream severed mid-frame is a detected error, not a silent EOF.
	fr = newFrameReader(bytes.NewReader(buf.Bytes()[:buf.Len()-4]))
	var err error
	for err == nil {
		_, err = fr.next(wireEvent)
	}
	if err == io.EOF {
		t.Error("mid-frame truncation reported as clean EOF")
	}
}

// TestNegotiationMatrix drives every cell of the codec matrix over real
// HTTP: Accept binary vs JSON × gzip on/off × versioned vs legacy paths.
func TestNegotiationMatrix(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainCars))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))

	get := func(t *testing.T, srvURL, path string, wantWire bool) (body []byte, ct string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srvURL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if wantWire {
			req.Header.Set("Accept", wireContentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b, resp.Header.Get("Content-Type")
	}

	for _, tc := range []struct {
		name        string
		compressMin int
	}{
		{"gzip-on", 1},      // every compressible frame compresses
		{"gzip-off", -1},    // compression disabled
		{"gzip-default", 0}, // DefaultCompressMin threshold
	} {
		t.Run(tc.name, func(t *testing.T) {
			srvObj := NewServer(g.Corpus, engine)
			srvObj.CompressMin = tc.compressMin
			srv := httptest.NewServer(srvObj.Handler())
			defer srv.Close()

			pageID := g.Corpus.Pages[2].ID
			rawPage := html.RenderPage(g.Corpus.Pages[2])
			for _, path := range []string{"/api/v1/stats", "/api/stats"} {
				// Binary negotiated: one stats frame.
				body, ct := get(t, srv.URL, path, true)
				if ct != wireContentType || !isWireFrame(body) {
					t.Fatalf("%s with Accept: got content-type %q, frame=%v", path, ct, isWireFrame(body))
				}
				var st Stats
				if err := decodeFramePayload(body, wireStats, func(d *store.Dec) { st = decodeStatsWire(d) }); err != nil {
					t.Fatal(err)
				}
				if st.NumPages != g.Corpus.NumPages() {
					t.Errorf("%s wire stats %+v", path, st)
				}
				// JSON default: same values, no frame.
				body, ct = get(t, srv.URL, path, false)
				if isWireFrame(body) || !strings.HasPrefix(ct, "application/json") {
					t.Fatalf("%s without Accept negotiated binary (ct %q)", path, ct)
				}
				var jst Stats
				if err := json.Unmarshal(body, &jst); err != nil {
					t.Fatal(err)
				}
				if jst != st {
					t.Errorf("%s: JSON stats %+v != wire stats %+v", path, jst, st)
				}
			}

			// Page bytes are identical through both codecs — the byte-level
			// parity bar — and the gzip flag obeys the threshold.
			frame, _ := get(t, srv.URL, html.PageHref(pageID), true)
			if !isWireFrame(frame) {
				t.Fatal("page with Accept did not frame")
			}
			gz := frame[len(wireMagic)+1]&wireFlagGzip != 0
			wantGz := tc.compressMin >= 0 && len(rawPage) >= srvObj.compressMin()
			if gz != wantGz {
				t.Errorf("page frame gzip=%v, want %v (compressMin %d, page %d bytes)",
					gz, wantGz, tc.compressMin, len(rawPage))
			}
			payload, err := openFrame(frame, wirePage)
			if err != nil {
				t.Fatal(err)
			}
			plain, _ := get(t, srv.URL, html.PageHref(pageID), false)
			if !bytes.Equal(payload, plain) || !bytes.Equal(payload, []byte(rawPage)) {
				t.Error("page bytes differ across codecs")
			}
		})
	}

	// WireDisabled: Accept is ignored, everything is JSON.
	t.Run("wire-disabled", func(t *testing.T) {
		srvObj := NewServer(g.Corpus, engine)
		srvObj.WireDisabled = true
		srv := httptest.NewServer(srvObj.Handler())
		defer srv.Close()
		body, _ := get(t, srv.URL, "/api/v1/stats", true)
		if isWireFrame(body) {
			t.Error("WireDisabled server framed a response")
		}
		// A binary-preferring client degrades transparently...
		c, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if c.WireNegotiated() {
			t.Error("client claims wire against a JSON-only server")
		}
		// ...but a CodecBinary client refuses to.
		if _, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{Codec: CodecBinary}); err == nil {
			t.Error("CodecBinary dial accepted a JSON-only server")
		}
	})

	// CodecJSON: the client never asks for binary even against a
	// wire-capable server.
	t.Run("codec-json", func(t *testing.T) {
		srv := httptest.NewServer(NewServer(g.Corpus, engine).Handler())
		defer srv.Close()
		c, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{Codec: CodecJSON})
		if err != nil {
			t.Fatal(err)
		}
		if c.WireNegotiated() {
			t.Error("CodecJSON client negotiated binary")
		}
		if _, err := c.Page(g.Corpus.Pages[0].ID); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMixedVersionFallback dials a pre-v1, JSON-only server (no /api/v1
// routes, no wire codec) with a current binary-preferring client: the
// dial probe falls back to the legacy surface and every call works.
func TestMixedVersionFallback(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	srvObj := NewServer(g.Corpus, engine)
	srvObj.WireDisabled = true
	inner := srvObj.Handler()
	// Emulate the previous release: the versioned surface does not exist.
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/v1/") {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer old.Close()

	c, err := DialContext(context.Background(), old.URL, g.Tokenizer, ClientOptions{Codec: CodecAuto})
	if err != nil {
		t.Fatalf("dial against pre-v1 server: %v", err)
	}
	if c.WireNegotiated() {
		t.Error("negotiated wire against a pre-v1 server")
	}
	if c.apiPrefix != "/api" {
		t.Errorf("apiPrefix %q, want legacy /api", c.apiPrefix)
	}
	e := g.Corpus.Entities[0]
	local := engine.SearchWithSeed(e.SeedTokens(), []string{"research"})
	remote, err := c.SearchWithSeedErr(context.Background(), e.SeedTokens(), []string{"research"})
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != len(remote) {
		t.Fatalf("local %d hits, remote %d", len(local), len(remote))
	}
	ents, err := c.Entities(context.Background())
	if err != nil || len(ents) != g.Corpus.NumEntities() {
		t.Fatalf("entities over legacy surface: %d, %v", len(ents), err)
	}
}

// TestErrorEnvelope: every handler's failure decodes into the one
// envelope, surfaces as *TransportError with the machine-readable code,
// and the server's retryable hint is honored over blind status-class
// retrying.
func TestErrorEnvelope(t *testing.T) {
	f := newFixture(t)
	for _, tc := range []struct {
		path     string
		status   int
		code     string
		whatness string
	}{
		{"/api/v1/search", http.StatusBadRequest, "bad_request", "missing query"},
		{"/api/v1/collfreq", http.StatusBadRequest, "bad_request", "missing tokens"},
		{"/page/999999.html", http.StatusNotFound, "not_found", "no such page"},
		{"/api/v1/jobs/nope", http.StatusNotFound, "not_found", "no such job"},
	} {
		resp, err := http.Get(f.srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		var env errorEnvelope
		derr := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != tc.status || derr != nil {
			t.Fatalf("GET %s = %d (decode %v), want %d envelope", tc.path, resp.StatusCode, derr, tc.status)
		}
		if env.Error.Code != tc.code || env.Error.Message == "" || env.Error.Retryable {
			t.Errorf("GET %s envelope %+v, want code %s, non-retryable", tc.path, env.Error, tc.code)
		}
	}

	// The client decodes the envelope into TransportError.Code.
	_, err := f.client.PageCtx(context.Background(), 999999)
	var te *TransportError
	if !errorsAs(err, &te) {
		t.Fatalf("error %v, want *TransportError", err)
	}
	if te.Code != "not_found" || te.Status != http.StatusNotFound {
		t.Errorf("TransportError %+v, want code not_found status 404", te)
	}

	// A 500 whose envelope says retryable:false must NOT be retried,
	// even though blind status-class retrying would.
	var hits atomic.Int64
	stubborn := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(errorEnvelope{Error: apiError{
			Code: "internal", Message: "deterministic failure", Retryable: false,
		}})
	}))
	defer stubborn.Close()
	c := derivedClient(f, stubborn.URL, fastRetry)
	_, err = c.SearchWithSeedErr(context.Background(), []string{"x"}, nil)
	if !errorsAs(err, &te) || te.Code != "internal" {
		t.Fatalf("error %v, want internal TransportError", err)
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("non-retryable 500 was retried %d times", n-1)
	}
}

// errorsAs avoids importing errors alongside the test file's many deps.
func errorsAs(err error, target any) bool {
	for err != nil {
		if te, ok := err.(*TransportError); ok {
			*(target.(**TransportError)) = te
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestStreamWireCodec: the harvest batch and job streams carry wire
// event frames when negotiated, and the decoded event sequence matches
// the NDJSON stream exactly.
func TestStreamWireCodec(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	srvObj := NewServer(g.Corpus, engine)
	srvObj.Harvest = &HarvestBackend{
		Cfg:     cfg,
		Aspects: []corpus.Aspect{synth.AspResearch},
		Y: func(a corpus.Aspect) func(*corpus.Page) bool {
			return func(p *corpus.Page) bool { return classify.GroundTruth(p, a) }
		},
		Rec: rec,
	}
	srv := httptest.NewServer(srvObj.Handler())
	defer srv.Close()

	req := HarvestRequest{
		Entities: []corpus.EntityID{g.Corpus.Entities[0].ID, g.Corpus.Entities[1].ID},
		Aspect:   string(synth.AspResearch),
		NQueries: 2,
		NoDomain: true,
	}
	collect := func(codec Codec) []HarvestEvent {
		c, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		if codec != CodecJSON && !c.WireNegotiated() {
			t.Fatal("wire not negotiated")
		}
		var evs []HarvestEvent
		if err := c.HarvestBatch(context.Background(), req, func(ev HarvestEvent) error {
			evs = append(evs, ev)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	viaWire := collect(CodecAuto)
	viaJSON := collect(CodecJSON)
	if !reflect.DeepEqual(viaWire, viaJSON) {
		t.Errorf("stream codecs diverge:\n wire %+v\n json %+v", viaWire, viaJSON)
	}
	if len(viaWire) == 0 || viaWire[len(viaWire)-1].Type != "done" {
		t.Fatalf("stream did not finish with done: %+v", viaWire)
	}

	// The async job stream through the wire codec.
	c, err := Dial(srv.URL, g.Tokenizer)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	id, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var jobEvs []HarvestEvent
	if err := c.StreamJob(ctx, id, func(ev HarvestEvent) error {
		jobEvs = append(jobEvs, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(jobEvs) == 0 || jobEvs[len(jobEvs)-1].Type != "done" {
		t.Fatalf("job stream did not finish with done: %+v", jobEvs)
	}
}

// TestDifferentialWireParity is the tentpole acceptance bar: a full
// fault-injected remote harvest (20% 500s + 10% truncations) over the
// binary wire fires the identical query sequence, gathers the identical
// page set, and downloads byte-identical page content vs the JSON wire.
func TestDifferentialWireParity(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	aspect := synth.AspResearch
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }
	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	var domain []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	dm, err := core.LearnDomain(cfg, aspect, g.Corpus, domain, y, rec)
	if err != nil {
		t.Fatal(err)
	}
	target := g.Corpus.Entities[g.Corpus.NumEntities()-1]

	// One injector per codec, identically seeded: both clients face the
	// same fault process.
	dialFaulty := func(codec Codec) (*Client, *FaultInjector) {
		inj := &FaultInjector{ErrorRate: 0.20, TruncateRate: 0.10, Seed: 202,
			Next: NewServer(g.Corpus, engine).Handler()}
		srv := httptest.NewServer(inj)
		t.Cleanup(srv.Close)
		c, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{Retry: fastRetry, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		return c, inj
	}

	run := func(c *Client) ([]core.Query, []corpus.PageID, map[corpus.PageID]string) {
		sess := core.NewSession(cfg, c, target, aspect, y, dm, rec, 42)
		fired := sess.Run(core.NewL2QBAL(), 3)
		ids := make([]corpus.PageID, 0, len(sess.Pages()))
		rendered := make(map[corpus.PageID]string, len(sess.Pages()))
		for _, p := range sess.Pages() {
			ids = append(ids, p.ID)
			// Re-render the fetched page: byte equality of the rendered
			// form means the downloaded content was byte-identical.
			rendered[p.ID] = html.RenderPage(p)
		}
		return fired, ids, rendered
	}

	jsonClient, jsonInj := dialFaulty(CodecJSON)
	wireClient, wireInj := dialFaulty(CodecAuto)
	if !wireClient.WireNegotiated() {
		t.Fatal("wire client did not negotiate binary")
	}
	jq, jp, jr := run(jsonClient)
	wq, wp, wr := run(wireClient)

	if !reflect.DeepEqual(jq, wq) {
		t.Errorf("fired queries differ across codecs:\n json %v\n wire %v", jq, wq)
	}
	if !reflect.DeepEqual(jp, wp) {
		t.Errorf("gathered pages differ across codecs:\n json %v\n wire %v", jp, wp)
	}
	if len(jq) == 0 || len(jp) == 0 {
		t.Fatal("session gathered nothing")
	}
	for id, body := range jr {
		if wr[id] != body {
			t.Errorf("page %d content differs across codecs", id)
		}
	}
	// Both runs must actually have been faulted, or parity proved nothing.
	for name, inj := range map[string]*FaultInjector{"json": jsonInj, "wire": wireInj} {
		_, e5, tr := inj.Counts()
		if e5 == 0 && tr == 0 {
			t.Fatalf("%s injector fired no faults", name)
		}
	}
	if m := wireClient.Metrics(); m.Retries == 0 || m.Errors != 0 {
		t.Errorf("wire client metrics %+v: want retries absorbed, zero terminal errors", m)
	}
}

// TestWireFrameStreamHeaderBound: frameReader refuses implausible frame
// sizes instead of allocating them.
func TestWireFrameStreamHeaderBound(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(wireMagic)
	buf.WriteByte(wireEvent)
	buf.WriteByte(0)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(maxResponseBytes)+1)
	buf.Write(tmp[:n])
	buf.Write([]byte{0, 0, 0, 0})
	fr := newFrameReader(&buf)
	if _, err := fr.next(wireEvent); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("oversized stream frame: %v", err)
	}
}

// TestThrottledWriterModelsTransfer: the injector's bandwidth model makes
// response time proportional to response size.
func TestThrottledWriterModelsTransfer(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 64<<10)
	inj := &FaultInjector{
		Bandwidth: 256 << 10, // 256 KB/s → 64 KB ≈ 250 ms
		Next: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Write(payload)
		}),
	}
	srv := httptest.NewServer(inj)
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(b) != len(payload) {
		t.Fatalf("read %d bytes, err %v", len(b), err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("64 KB at 256 KB/s took %v, want ≥200ms", elapsed)
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
