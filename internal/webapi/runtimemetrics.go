package webapi

import rtmetrics "runtime/metrics"

// RuntimeMetrics is the runtime-health block of the GET /api/v1/metrics
// payload: the gauges a load driver needs to correlate latency spikes
// with GC activity (heap pressure, pause tail, goroutine count) and to
// compute server-side allocations per request from deltas of the
// cumulative allocation counters.
type RuntimeMetrics struct {
	// HeapInuseBytes is the live-heap footprint (spans in use).
	HeapInuseBytes uint64 `json:"heapInuseBytes"`
	// GCPauseP99Ms is the 99th-percentile stop-the-world pause, in
	// milliseconds, over the process lifetime pause histogram.
	GCPauseP99Ms float64 `json:"gcPauseP99Ms"`
	// Goroutines is the current goroutine count.
	Goroutines int64 `json:"goroutines"`
	// AllocObjects / AllocBytes are cumulative heap allocations since
	// process start; two samples bracketing a request burst yield
	// allocs/request server-side.
	AllocObjects uint64 `json:"allocObjects"`
	AllocBytes   uint64 `json:"allocBytes"`
}

// runtimeSampleNames are the runtime/metrics samples backing
// RuntimeMetrics, in the order readRuntimeMetrics consumes them.
var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
	"/sched/goroutines:goroutines",
	"/gc/heap/allocs:objects",
	"/gc/heap/allocs:bytes",
}

// readRuntimeMetrics samples the runtime. It allocates a fresh sample
// slice per call — /metrics is not a hot path, and sharing one slice
// would need a lock for no benefit.
func readRuntimeMetrics() RuntimeMetrics {
	samples := make([]rtmetrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	rtmetrics.Read(samples)
	var rm RuntimeMetrics
	if samples[0].Value.Kind() == rtmetrics.KindUint64 {
		rm.HeapInuseBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == rtmetrics.KindFloat64Histogram {
		rm.GCPauseP99Ms = histQuantile(samples[1].Value.Float64Histogram(), 0.99) * 1000
	}
	if samples[2].Value.Kind() == rtmetrics.KindUint64 {
		rm.Goroutines = int64(samples[2].Value.Uint64())
	}
	if samples[3].Value.Kind() == rtmetrics.KindUint64 {
		rm.AllocObjects = samples[3].Value.Uint64()
	}
	if samples[4].Value.Kind() == rtmetrics.KindUint64 {
		rm.AllocBytes = samples[4].Value.Uint64()
	}
	return rm
}

// histQuantile returns the upper bound of the bucket containing quantile
// q of a runtime/metrics histogram (0 when the histogram is empty). The
// runtime's pause histograms have +Inf tails; those collapse to the last
// finite bucket boundary so the result stays plottable.
func histQuantile(h *rtmetrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Bucket i spans (Buckets[i], Buckets[i+1]].
			hi := h.Buckets[i+1]
			if hi > 1e18 || hi != hi { // +Inf tail or NaN
				hi = h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
