package webapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// RetryPolicy controls how the client retries idempotent GET requests.
// Every request the client issues is a GET against an immutable corpus, so
// retrying is always safe; what the policy tunes is how hard the client
// fights before a fault surfaces as an error. The zero value picks the
// defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, including the
	// first (default 4; 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50 ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 2 s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the sleep before retry number retry (1-based): exponential
// growth capped at MaxDelay, with full jitter in [d/2, d] so a fleet of
// clients hammered by the same outage does not retry in lockstep.
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseDelay << (retry - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0 guards shift overflow
		d = p.MaxDelay
	}
	half := d / 2
	return half + rand.N(d-half+1)
}

// sleep blocks for the backoff before the given retry, or until ctx is
// canceled (returning the context error).
func (p RetryPolicy) sleep(ctx context.Context, retry int) error {
	t := time.NewTimer(p.backoff(retry))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TransportError is the typed failure of one client API operation after the
// retry policy was exhausted. It wraps the last underlying error and keeps
// enough structure (operation, path, HTTP status, attempt count) for
// callers to account failures instead of silently losing work.
type TransportError struct {
	// Op names the API operation: "stats", "search", "page", "collfreq",
	// "harvest".
	Op string
	// Path is the request path (query string included).
	Path string
	// Attempts is how many tries were made before giving up.
	Attempts int
	// Status is the last HTTP status received (0 when the failure was
	// below HTTP: dial errors, timeouts, truncated bodies).
	Status int
	// Code is the machine-readable error code from the server's error
	// envelope ("" when the failure was below HTTP or the body carried
	// no envelope — a pre-envelope server, a proxy error page).
	Code string
	// Err is the last underlying error.
	Err error
}

func (e *TransportError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("webapi: %s %s: status %d after %d attempt(s): %v",
			e.Op, e.Path, e.Status, e.Attempts, e.Err)
	}
	return fmt.Sprintf("webapi: %s %s: %v (after %d attempt(s))",
		e.Op, e.Path, e.Err, e.Attempts)
}

func (e *TransportError) Unwrap() error { return e.Err }

// statusError marks an HTTP error status inside the retry loop, carrying
// the decoded error envelope when the body held one.
type statusError struct {
	status int
	// code and the retryable hint come from the server's error envelope;
	// hinted is false when the body carried none (a pre-envelope server,
	// an intermediary's error page, an injected plain-text fault).
	code      string
	body      string
	hinted    bool
	retryHint bool
}

func (e *statusError) Error() string {
	if e.body == "" {
		return http.StatusText(e.status)
	}
	if e.code != "" {
		return fmt.Sprintf("%s: %s: %s", http.StatusText(e.status), e.code, e.body)
	}
	return fmt.Sprintf("%s: %s", http.StatusText(e.status), e.body)
}

// readError drains a non-200 response into a statusError, decoding the
// API's JSON error envelope when the body carries one. Only a bounded
// prefix of the body is ever read: a misbehaving server's multi-megabyte
// 500 page is not worth transferring to truncate.
func readError(resp *http.Response) *statusError {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
	se := &statusError{status: resp.StatusCode, body: strings.TrimSpace(string(snippet))}
	var env errorEnvelope
	if json.Unmarshal(snippet, &env) == nil && env.Error.Message != "" {
		se.code = env.Error.Code
		se.body = env.Error.Message
		se.hinted = true
		se.retryHint = env.Error.Retryable
	}
	return se
}

// retryable classifies an in-loop failure. Connection errors, per-request
// timeouts, truncated reads and malformed payloads are transient (the
// server and corpus are healthy invariants; the wire is not). For HTTP
// error statuses the server's envelope hint wins when present; without
// one (a pre-envelope server, a proxy error page), 5xx and 429 are
// server-side hiccups worth retrying and other statuses are contract
// errors that retrying cannot fix. Cancellation is judged by the
// caller's context, not by error identity: an http.Client per-request
// Timeout also surfaces as context.DeadlineExceeded, and that is exactly
// the fault class the retry loop exists to absorb — only the caller's own
// ctx expiring ends the operation.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		if se.hinted {
			return se.retryHint
		}
		return se.status >= 500 || se.status == http.StatusTooManyRequests
	}
	return true
}

// ClientMetrics is a point-in-time snapshot of a client's request/failure
// accounting — the per-query API cost the paper's setting charges for.
type ClientMetrics struct {
	// Requests counts HTTP requests issued, retries included.
	Requests int64
	// Retries counts re-issued requests (Requests - Retries = first tries).
	Retries int64
	// Errors counts operations that failed even after retrying.
	Errors int64
	// PageFetches counts pages downloaded over the wire (cache and
	// singleflight hits excluded).
	PageFetches int64
	// PrefetchShared counts page fetches coalesced onto another in-flight
	// download of the same page (singleflight hits).
	PrefetchShared int64
}

// metrics is the client's live counter set.
type metrics struct {
	requests       atomic.Int64
	retries        atomic.Int64
	errors         atomic.Int64
	pageFetches    atomic.Int64
	prefetchShared atomic.Int64
}

func (m *metrics) snapshot() ClientMetrics {
	return ClientMetrics{
		Requests:       m.requests.Load(),
		Retries:        m.retries.Load(),
		Errors:         m.errors.Load(),
		PageFetches:    m.pageFetches.Load(),
		PrefetchShared: m.prefetchShared.Load(),
	}
}
