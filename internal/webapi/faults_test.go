package webapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// fastRetry keeps fault tests quick: generous attempts, millisecond backoff.
var fastRetry = RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}

// derivedClient builds a client aimed at base, reusing f's tokenizer and
// dialed stats without re-dialing (the target may be deliberately broken).
func derivedClient(f *fixture, base string, retry RetryPolicy) *Client {
	return &Client{
		base:            strings.TrimRight(base, "/"),
		http:            &http.Client{Timeout: 30 * time.Second},
		tok:             f.g.Tokenizer,
		stats:           f.client.stats,
		retry:           retry.withDefaults(),
		prefetchWorkers: 4,
		apiPrefix:       "/api/v1",
		pageCache:       make(map[corpus.PageID]*corpus.Page),
		cfCache:         make(map[string]int),
	}
}

// newFaultyFixture serves the standard fixture corpus through a fault
// injector and dials it with a patient, fast-backoff client.
func newFaultyFixture(t *testing.T, inj *FaultInjector) (*fixture, *FaultInjector) {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	inj.Next = NewServer(g.Corpus, engine).Handler()
	srv := httptest.NewServer(inj)
	t.Cleanup(srv.Close)
	client, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, engine: engine, srv: srv, client: client}, inj
}

// TestRetryOn5xx: a server that fails each request twice before serving it
// is invisible to the client — the retry loop absorbs the 500s.
func TestRetryOn5xx(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainCars))
	if err != nil {
		t.Fatal(err)
	}
	backend := NewServer(g.Corpus, search.NewEngine(search.BuildIndex(g.Corpus.Pages))).Handler()
	var perPath sync.Map // path → *atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v, _ := perPath.LoadOrStore(r.URL.RequestURI(), new(atomic.Int64))
		if v.(*atomic.Int64).Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		backend.ServeHTTP(w, r)
	}))
	defer srv.Close()

	client, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{Retry: fastRetry})
	if err != nil {
		t.Fatalf("dial through double-500s: %v", err)
	}
	e := g.Corpus.Entities[0]
	res, err := client.SearchWithSeedErr(context.Background(), e.SeedTokens(), []string{"safety"})
	if err != nil {
		t.Fatalf("search through double-500s: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if m := client.Metrics(); m.Retries < 4 {
		t.Errorf("expected several retries, metrics %+v", m)
	} else if m.Errors != 0 {
		t.Errorf("no operation should have failed, metrics %+v", m)
	}
}

// TestRetryExhaustion: a hard-down endpoint surfaces as a typed
// *TransportError carrying the status and attempt count — not as a silent
// empty result.
func TestRetryExhaustion(t *testing.T) {
	f := newFixture(t)
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down for maintenance", http.StatusInternalServerError)
	}))
	defer down.Close()
	client := derivedClient(f, down.URL,
		RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})

	_, err := client.SearchWithSeedErr(context.Background(), []string{"x"}, nil)
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("error %v (%T), want *TransportError", err, err)
	}
	if te.Status != http.StatusInternalServerError || te.Attempts != 3 || te.Op != "search" {
		t.Errorf("TransportError %+v, want status 500 after 3 search attempts", te)
	}

	// The legacy Retriever surface converts the failure to "no results".
	if res := client.SearchWithSeed([]string{"x"}, nil); res != nil {
		t.Errorf("legacy surface returned %d results from a dead server", len(res))
	}
}

// TestNonRetryableStatus: 4xx is a contract error; the client must not
// burn its retry budget on it.
func TestNonRetryableStatus(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, "no such thing", http.StatusNotFound)
	}))
	defer srv.Close()
	f := newFixture(t)
	client := derivedClient(f, srv.URL, fastRetry)

	_, err := client.PageCtx(context.Background(), 3)
	var te *TransportError
	if !errors.As(err, &te) || te.Status != http.StatusNotFound {
		t.Fatalf("error %v, want 404 TransportError", err)
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("404 was retried %d times", n-1)
	}
}

// TestTruncatedBodyRetried: a response that dies mid-body (full
// Content-Length declared, half written) is a transient fault the client
// retries, not a short-but-accepted payload.
func TestTruncatedBodyRetried(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainCars))
	if err != nil {
		t.Fatal(err)
	}
	backend := NewServer(g.Corpus, search.NewEngine(search.BuildIndex(g.Corpus.Pages))).Handler()
	trunc := &FaultInjector{Next: backend, TruncateRate: 1}
	var failFirst sync.Map
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, seen := failFirst.LoadOrStore(r.URL.RequestURI(), true); !seen {
			trunc.ServeHTTP(w, r)
			return
		}
		backend.ServeHTTP(w, r)
	}))
	defer srv.Close()

	client, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{Retry: fastRetry})
	if err != nil {
		t.Fatalf("dial through truncation: %v", err)
	}
	e := g.Corpus.Entities[1]
	res, err := client.SearchWithSeedErr(context.Background(), e.SeedTokens(), []string{"engine"})
	if err != nil {
		t.Fatalf("search through truncation: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	m := client.Metrics()
	if m.Retries == 0 {
		t.Errorf("truncated responses should have forced retries, metrics %+v", m)
	}
	if _, _, truncated := trunc.Counts(); truncated == 0 {
		t.Error("injector truncated nothing; the test exercised no fault")
	}
}

// TestPerRequestTimeoutRetried: a response slower than the client's
// per-request timeout is the canonical transient fault — it must consume
// retry attempts, not bypass the budget. (http.Client.Timeout errors also
// satisfy errors.Is(err, context.DeadlineExceeded); cancellation is
// judged by the caller's ctx, not error identity.)
func TestPerRequestTimeoutRetried(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainCars))
	if err != nil {
		t.Fatal(err)
	}
	backend := NewServer(g.Corpus, search.NewEngine(search.BuildIndex(g.Corpus.Pages))).Handler()
	var stallFirst sync.Map // URI → *atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v, _ := stallFirst.LoadOrStore(r.URL.RequestURI(), new(atomic.Int64))
		if v.(*atomic.Int64).Add(1) <= 2 {
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second): // far past the client timeout
			}
			return
		}
		backend.ServeHTTP(w, r)
	}))
	defer srv.Close()

	client, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{
		Retry:   RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Timeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial through stalls: %v", err)
	}
	e := g.Corpus.Entities[2]
	res, err := client.SearchWithSeedErr(context.Background(), e.SeedTokens(), []string{"engine"})
	if err != nil {
		t.Fatalf("search through stalls: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if m := client.Metrics(); m.Retries == 0 {
		t.Errorf("timed-out requests consumed no retries, metrics %+v", m)
	}
}

// TestContextCancelAborts: cancellation cuts a stalled request immediately
// (no retries, no 30 s timeout wait).
func TestContextCancelAborts(t *testing.T) {
	f := newFixture(t)
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(30 * time.Second):
		}
	}))
	defer stall.Close()
	client := derivedClient(f, stall.URL, fastRetry)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.SearchWithSeedErr(ctx, []string{"x"}, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled search succeeded?")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v, want deadline exceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want ~50ms", elapsed)
	}
}

// TestPrefetchSingleflight: concurrent fetches of the same page coalesce
// onto one download.
func TestPrefetchSingleflight(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	backend := NewServer(g.Corpus, search.NewEngine(search.BuildIndex(g.Corpus.Pages))).Handler()
	var pageHits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/page/") {
			pageHits.Add(1)
			time.Sleep(300 * time.Millisecond) // hold the flight open
		}
		backend.ServeHTTP(w, r)
	}))
	defer srv.Close()
	client, err := Dial(srv.URL, g.Tokenizer)
	if err != nil {
		t.Fatal(err)
	}

	id := g.Corpus.Pages[5].ID
	const callers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := client.PageCtx(context.Background(), id)
			errs <- err
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := pageHits.Load(); n != 1 {
		t.Errorf("%d concurrent fetches hit the server %d times, want 1", callers, n)
	}
	if m := client.Metrics(); m.PrefetchShared == 0 {
		t.Errorf("no fetch was coalesced, metrics %+v", m)
	}
}

// TestSingleflightLeaderCancelDoesNotPoisonFollowers: a flight runs under
// its leader's context, so a leader aborted by its OWN cancellation (one
// query's prefetch bailing out) must not fail a follower whose context is
// alive — the follower retries the fetch instead of inheriting the
// spurious context.Canceled.
func TestSingleflightLeaderCancelDoesNotPoisonFollowers(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	backend := NewServer(g.Corpus, search.NewEngine(search.BuildIndex(g.Corpus.Pages))).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/page/") {
			time.Sleep(200 * time.Millisecond) // hold the flight open
		}
		backend.ServeHTTP(w, r)
	}))
	defer srv.Close()
	client, err := Dial(srv.URL, g.Tokenizer)
	if err != nil {
		t.Fatal(err)
	}

	id := g.Corpus.Pages[9].ID
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := client.PageCtx(leaderCtx, id)
		leaderErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the leader take the flight
	followerErr := make(chan error, 1)
	go func() {
		_, err := client.PageCtx(context.Background(), id)
		followerErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the follower join it
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Errorf("leader error %v, want its own cancellation", err)
	}
	if err := <-followerErr; err != nil {
		t.Errorf("live-context follower inherited the leader's cancellation: %v", err)
	}
}

// TestMalformedPageRejected: a document without the l2q-page-id meta must
// be rejected, not ingested as page 0 (which would alias every malformed
// page onto one slot in the session's dedup set).
func TestMalformedPageRejected(t *testing.T) {
	f := newFixture(t)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/page/") {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			w.Write([]byte("<!DOCTYPE html>\n<html><head><title>x</title></head><body><p>junk</p></body></html>"))
			return
		}
		http.NotFound(w, r)
	}))
	defer bad.Close()
	client := derivedClient(f, bad.URL,
		RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})

	_, err := client.PageCtx(context.Background(), 7)
	if err == nil {
		t.Fatal("malformed page accepted")
	}
	if !strings.Contains(err.Error(), "l2q-page-id") {
		t.Errorf("error %v does not name the missing meta", err)
	}
}

// TestDifferentialFaultParity is the acceptance bar: with the injector
// erroring 20% of requests and truncating another 10%, a full domain- and
// context-aware harvesting session through the flaky HTTP boundary fires
// the identical query sequence and gathers the identical page set as the
// in-process engine. Retries make faults invisible — not approximated.
func TestDifferentialFaultParity(t *testing.T) {
	f, inj := newFaultyFixture(t, &FaultInjector{ErrorRate: 0.20, TruncateRate: 0.10, Seed: 42})
	g := f.g
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	aspect := synth.AspResearch
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }

	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	var domain []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	dm, err := core.LearnDomain(cfg, aspect, g.Corpus, domain, y, rec)
	if err != nil {
		t.Fatal(err)
	}
	target := g.Corpus.Entities[g.Corpus.NumEntities()-1]

	run := func(engine core.Retriever) ([]core.Query, []corpus.PageID) {
		sess := core.NewSession(cfg, engine, target, aspect, y, dm, rec, 42)
		fired := sess.Run(core.NewL2QBAL(), 3)
		var ids []corpus.PageID
		for _, p := range sess.Pages() {
			ids = append(ids, p.ID)
		}
		return fired, ids
	}

	localQ, localP := run(f.engine)
	remoteQ, remoteP := run(f.client)
	if !reflect.DeepEqual(localQ, remoteQ) {
		t.Errorf("fired queries differ under faults:\n local %v\nremote %v", localQ, remoteQ)
	}
	if !reflect.DeepEqual(localP, remoteP) {
		t.Errorf("gathered pages differ under faults:\n local %v\nremote %v", localP, remoteP)
	}
	if len(localQ) == 0 || len(localP) == 0 {
		t.Fatal("session gathered nothing")
	}
	_, errors500, truncated := inj.Counts()
	if errors500 == 0 && truncated == 0 {
		t.Fatal("injector fired no faults; the differential test proved nothing")
	}
	m := f.client.Metrics()
	if m.Retries == 0 {
		t.Errorf("no retries recorded under a 30%% fault rate, metrics %+v", m)
	}
	if m.Errors != 0 {
		t.Errorf("operations failed for good (%d): parity held by luck, raise MaxAttempts", m.Errors)
	}
	t.Logf("parity under faults: %d requests, %d retried; injector served %d faults",
		m.Requests, m.Retries, errors500+truncated)
}
