package webapi

// POST /api/v1/ingest: the live server's write path. A batch of pages is
// validated as a whole, appended to the corpus, and absorbed by the
// generational engine — all under one corpusMu critical section, so the
// corpus page order IS the ingest order. That ordering is the parity
// contract's backbone: a frozen engine rebuilt from the grown corpus
// assigns the same ordinals and therefore the same rankings as the live
// engine that grew.
//
// Idempotency: a page whose ID the server already holds is skipped and
// counted in Duplicates, not rejected — the client's retry loop may
// deliver a batch twice (the request succeeded but the ack was lost), and
// re-ingesting must not double-count collection statistics. Contract
// errors (unknown entity with no registration info, empty batch, empty
// page) reject the WHOLE batch before any mutation: partial application
// would leave the client unable to tell which pages landed.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"l2q/internal/corpus"
	"l2q/internal/store"
)

// IngestParagraph is one paragraph of an ingested page. Text is
// tokenized SERVER-side with the corpus tokenizer — a client-side
// tokenization could disagree on phrase boundaries and silently break
// grown-vs-rebuilt ranking parity.
type IngestParagraph struct {
	Text   string `json:"text"`
	Aspect string `json:"aspect,omitempty"`
}

// IngestPage is one page of an ingest batch. EntityName and SeedQuery
// auto-register the entity when its ID is new to the corpus; for a known
// entity they are ignored.
type IngestPage struct {
	ID         corpus.PageID     `json:"id"`
	Entity     corpus.EntityID   `json:"entity"`
	EntityName string            `json:"entityName,omitempty"`
	SeedQuery  string            `json:"seedQuery,omitempty"`
	URL        string            `json:"url,omitempty"`
	Title      string            `json:"title,omitempty"`
	Paras      []IngestParagraph `json:"paras"`
	Links      []corpus.PageID   `json:"links,omitempty"`
}

// IngestRequest is the POST /api/v1/ingest payload (JSON or one
// wireIngest frame).
type IngestRequest struct {
	Pages []IngestPage `json:"pages"`
}

// IngestResponse acknowledges an ingest batch with the engine's
// post-absorb gauges, so a load driver can track ingest lag and segment
// churn without a second metrics round trip.
type IngestResponse struct {
	// Ingested counts pages newly absorbed by this request.
	Ingested int `json:"ingested"`
	// Duplicates counts pages skipped because their ID was already
	// present (the retry-idempotency path).
	Duplicates int `json:"duplicates"`
	// NumDocs, Epoch and Segments snapshot the live engine after absorb.
	NumDocs  int    `json:"numDocs"`
	Epoch    uint64 `json:"epoch"`
	Segments int    `json:"segments"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.Live == nil {
		writeError(w, http.StatusNotImplemented, "ingest not supported: server is frozen (start with -live)")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxResponseBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var req IngestRequest
	if isWireFrame(body) {
		if err := decodeFramePayload(body, wireIngest, func(d *store.Dec) { req = decodeIngestWire(d) }); err != nil {
			writeError(w, http.StatusBadRequest, "bad ingest frame: "+err.Error())
			return
		}
	} else if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad ingest payload: "+err.Error())
		return
	}
	if len(req.Pages) == 0 {
		writeError(w, http.StatusBadRequest, "empty ingest batch")
		return
	}
	resp, errMsg := s.ingest(req)
	if errMsg != "" {
		writeError(w, http.StatusBadRequest, errMsg)
		return
	}
	s.respond(w, r, wireIngest, func(e *store.Enc) { encodeIngestAckWire(e, resp) }, resp)
}

// ingest validates and applies one batch under the corpus write lock.
// A non-empty errMsg means the batch was rejected whole, nothing applied.
func (s *Server) ingest(req IngestRequest) (resp IngestResponse, errMsg string) {
	tok := s.tokenizer()
	s.corpusMu.Lock()
	defer s.corpusMu.Unlock()

	// Validate the whole batch before touching anything. Duplicate IDs
	// within the batch count against the FIRST occurrence: the first copy
	// lands, later copies are duplicates. An unknown entity needs
	// registration info on only ONE page of the batch — the natural
	// client shape sends it once and references the ID afterwards.
	seen := make(map[corpus.PageID]bool, len(req.Pages))
	reg := make(map[corpus.EntityID]bool)
	for i := range req.Pages {
		p := &req.Pages[i]
		if _, dup := s.pages[p.ID]; dup || seen[p.ID] {
			continue // skipped later; nothing else to validate
		}
		seen[p.ID] = true
		if len(p.Paras) == 0 {
			return resp, fmt.Sprintf("page %d has no paragraphs", p.ID)
		}
		if s.corpus.Entity(p.Entity) == nil && !reg[p.Entity] {
			if p.EntityName == "" && p.SeedQuery == "" {
				return resp, fmt.Sprintf(
					"page %d references unknown entity %d and carries no entityName/seedQuery to register it",
					p.ID, p.Entity)
			}
			reg[p.Entity] = true
		}
	}

	added := make([]*corpus.Page, 0, len(req.Pages))
	for i := range req.Pages {
		ip := &req.Pages[i]
		if _, dup := s.pages[ip.ID]; dup {
			resp.Duplicates++
			continue
		}
		if s.corpus.Entity(ip.Entity) == nil {
			ent := &corpus.Entity{
				ID:        ip.Entity,
				Domain:    s.corpus.Domain,
				Name:      ip.EntityName,
				SeedQuery: ip.SeedQuery,
			}
			if err := s.corpus.AddEntity(ent); err != nil {
				return resp, err.Error() // unreachable after validation; belt and braces
			}
		}
		p := &corpus.Page{
			ID:     ip.ID,
			Entity: ip.Entity,
			URL:    ip.URL,
			Title:  ip.Title,
			Paras:  make([]corpus.Paragraph, 0, len(ip.Paras)),
			Links:  ip.Links,
		}
		for _, para := range ip.Paras {
			p.Paras = append(p.Paras, corpus.Paragraph{
				Text:   para.Text,
				Tokens: tok.Tokenize(para.Text),
				Aspect: corpus.Aspect(para.Aspect),
			})
		}
		if err := s.corpus.AddPage(p); err != nil {
			return resp, err.Error()
		}
		s.pages[p.ID] = p
		added = append(added, p)
	}
	// Absorb inside the lock: concurrent batches must reach the engine in
	// corpus order. Searches never contend here — they read epoch views.
	if len(added) > 0 {
		s.Live.Add(added...)
	}
	resp.Ingested = len(added)
	m := s.Live.Metrics()
	resp.NumDocs = m.NumDocs
	resp.Epoch = m.Epoch
	resp.Segments = m.Segments
	return resp, ""
}
