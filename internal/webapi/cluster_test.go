package webapi

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/html"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

// startClusterNodes boots n node servers over g's corpus (each a full
// server with its ClusterNode attached) and returns their base URLs in
// node-ID order. wrap, when non-nil, interposes a per-node handler — a
// fault injector, a kill switch — between the wire and the server.
func startClusterNodes(t testing.TB, g *synth.Generated, nodes, replicas int, wrap func(i int, h http.Handler) http.Handler) []string {
	t.Helper()
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		node, err := NewClusterNode(g.Corpus,
			search.ClusterSpec{Nodes: nodes, Replicas: replicas, NodeID: i}, search.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(g.Corpus, engine)
		srv.Node = node
		h := http.Handler(srv.Handler())
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// dialCluster dials a coordinator over the node URLs with test-speed
// retries and the given per-node deadline (0 = default).
func dialCluster(t testing.TB, g *synth.Generated, urls []string, replicas int, deadline time.Duration) *Coordinator {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	co, err := DialCoordinator(ctx, CoordinatorConfig{
		Nodes:        urls,
		Replicas:     replicas,
		NodeDeadline: deadline,
		Client:       ClientOptions{Retry: fastRetry},
	}, g.Tokenizer)
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// sessionSetup builds the shared session fixtures (domain model, target,
// ground truth) once per corpus.
type sessionSetup struct {
	cfg    core.Config
	target *corpus.Entity
	aspect corpus.Aspect
	y      func(*corpus.Page) bool
	dm     *core.DomainModel
	rec    types.Recognizer
}

func newSessionSetup(t testing.TB, g *synth.Generated) *sessionSetup {
	t.Helper()
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	aspect := synth.AspResearch
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }
	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	var domain []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	dm, err := core.LearnDomain(cfg, aspect, g.Corpus, domain, y, rec)
	if err != nil {
		t.Fatal(err)
	}
	return &sessionSetup{cfg: cfg, target: g.Corpus.Entities[g.Corpus.NumEntities()-1],
		aspect: aspect, y: y, dm: dm, rec: rec}
}

// run drives one session and returns its fired queries, gathered page IDs
// and rendered page bytes (byte equality of the rendered form is the
// download-fidelity check).
func (ss *sessionSetup) run(sel core.Selector, ret core.Retriever) ([]core.Query, []corpus.PageID, map[corpus.PageID]string) {
	sess := core.NewSession(ss.cfg, ret, ss.target, ss.aspect, ss.y, ss.dm, ss.rec, 42)
	fired := sess.Run(sel, 3)
	ids := make([]corpus.PageID, 0, len(sess.Pages()))
	rendered := make(map[corpus.PageID]string, len(sess.Pages()))
	for _, p := range sess.Pages() {
		ids = append(ids, p.ID)
		rendered[p.ID] = html.RenderPage(p)
	}
	return fired, ids, rendered
}

// TestClusterSessionParity is the tentpole's differential bar: full
// harvesting sessions against a 3-node scatter-gather cluster fire the
// identical query sequence, gather the identical page set, and download
// byte-identical content vs the same session against the in-process
// single-node engine — across selection strategies, both through the
// in-process coordinator and through a client dialed at a coordinator
// server (the whole serving surface, page proxying included).
func TestClusterSessionParity(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	ss := newSessionSetup(t, g)

	urls := startClusterNodes(t, g, 3, 2, nil)
	co := dialCluster(t, g, urls, 2, 0)

	// The aggregated serving stats must be field-for-field the single
	// node's.
	want := Stats{
		Domain:      string(g.Corpus.Domain),
		NumEntities: g.Corpus.NumEntities(),
		NumPages:    g.Corpus.NumPages(),
		NumTerms:    engine.Index().NumTerms(),
		TotalTokens: engine.Index().TotalTokens(),
		Mu:          engine.Mu(),
		TopK:        engine.TopK(),
	}
	if co.Stats() != want {
		t.Fatalf("coordinator stats %+v, want single-node %+v", co.Stats(), want)
	}

	coSrv := httptest.NewServer(NewCoordinatorServer(co).Handler())
	t.Cleanup(coSrv.Close)
	remote, err := DialOpts(coSrv.URL, g.Tokenizer, ClientOptions{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	if remote.Stats() != want {
		t.Fatalf("coordinator server stats %+v, want %+v", remote.Stats(), want)
	}

	strategies := map[string]func() core.Selector{
		"L2Q-BAL": core.NewL2QBAL,
		"P":       core.NewP,
		"R+t":     core.NewRT,
	}
	for name, sel := range strategies {
		lq, lp, lr := ss.run(sel(), engine)
		if len(lq) == 0 || len(lp) == 0 {
			t.Fatalf("%s: reference session gathered nothing", name)
		}
		for retName, ret := range map[string]core.Retriever{"coordinator": co, "remote": remote} {
			cq, cp, cr := ss.run(sel(), ret)
			if !reflect.DeepEqual(lq, cq) {
				t.Errorf("%s/%s: fired queries differ:\n local %v\ncluster %v", name, retName, lq, cq)
			}
			if !reflect.DeepEqual(lp, cp) {
				t.Errorf("%s/%s: gathered pages differ:\n local %v\ncluster %v", name, retName, lp, cp)
			}
			for id, body := range lr {
				if cr[id] != body {
					t.Errorf("%s/%s: page %d content differs", name, retName, id)
				}
			}
		}
	}
	if m := co.Metrics(); m.Scatters == 0 || m.Partials != 0 || m.Hedges != 0 {
		t.Errorf("healthy cluster metrics %+v: want scatters > 0 and no hedges/partials", m)
	}
}

// TestClusterParityUnderFaults holds the same differential bar with every
// node behind a seeded fault injector (20% 500s + 10% truncated bodies):
// the per-node retry budget plus replica failover absorb the faults and
// the session still matches the in-process run exactly.
func TestClusterParityUnderFaults(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	ss := newSessionSetup(t, g)

	injs := make([]*FaultInjector, 3)
	urls := startClusterNodes(t, g, 3, 2, func(i int, h http.Handler) http.Handler {
		injs[i] = &FaultInjector{ErrorRate: 0.20, TruncateRate: 0.10, Seed: uint64(300 + i), Next: h}
		return injs[i]
	})
	co := dialCluster(t, g, urls, 2, 0)

	lq, lp, lr := ss.run(core.NewL2QBAL(), engine)
	cq, cp, cr := ss.run(core.NewL2QBAL(), co)
	if !reflect.DeepEqual(lq, cq) {
		t.Errorf("fired queries differ under faults:\n local %v\ncluster %v", lq, cq)
	}
	if !reflect.DeepEqual(lp, cp) {
		t.Errorf("gathered pages differ under faults:\n local %v\ncluster %v", lp, cp)
	}
	if len(lq) == 0 || len(lp) == 0 {
		t.Fatal("session gathered nothing")
	}
	for id, body := range lr {
		if cr[id] != body {
			t.Errorf("page %d content differs under faults", id)
		}
	}
	faulted := false
	for i, inj := range injs {
		_, e5, tr := inj.Counts()
		if e5+tr > 0 {
			faulted = true
		}
		t.Logf("node %d: %d injected 500s, %d truncations", i, e5, tr)
	}
	if !faulted {
		t.Fatal("no injector fired a fault; parity proved nothing")
	}
}

// killSwitch fails every request with a retryable 500 once tripped — the
// deterministic node-down fault.
type killSwitch struct {
	down atomic.Bool
	next http.Handler
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.down.Load() {
		writeError(w, http.StatusInternalServerError, "node down")
		return
	}
	k.next.ServeHTTP(w, r)
}

// TestClusterNodeKillFailover kills one node outright: with replicas=2
// every partition it owned has a live replica, so scatters stay complete
// (no lost hits, rankings still identical to single-node) and the fan-out
// gauges show the failovers.
func TestClusterNodeKillFailover(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))

	kills := make([]*killSwitch, 3)
	urls := startClusterNodes(t, g, 3, 2, func(i int, h http.Handler) http.Handler {
		kills[i] = &killSwitch{next: h}
		return kills[i]
	})
	co := dialCluster(t, g, urls, 2, 0)
	kills[1].down.Store(true)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	checked := 0
	for _, e := range g.Corpus.Entities[:6] {
		seed := e.SeedTokens()
		want := engine.SearchWithSeed(seed, nil)
		got, err := co.SearchWithSeedErr(ctx, seed, nil)
		if err != nil {
			t.Fatalf("entity %q: scatter with node 1 down failed: %v", e.Name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("entity %q: %d hits with node down, want %d — hits were lost", e.Name, len(got), len(want))
		}
		for i := range want {
			if got[i].Page.ID != want[i].Page.ID || got[i].Score != want[i].Score {
				t.Fatalf("entity %q rank %d: (doc %d, %v) vs single-node (doc %d, %v)",
					e.Name, i, got[i].Page.ID, got[i].Score, want[i].Page.ID, want[i].Score)
			}
		}
		checked += len(want)
	}
	if checked == 0 {
		t.Fatal("no hits checked")
	}
	m := co.Metrics()
	if m.Hedges == 0 {
		t.Errorf("metrics %+v: killed primary produced no hedges", m)
	}
	if m.Partials != 0 {
		t.Errorf("metrics %+v: replicated cluster served partial results", m)
	}
	if m.PerNode[1].Errors == 0 {
		t.Errorf("metrics %+v: no errors recorded against the killed node", m)
	}

	// The coordinator server surfaces the same gauges on /api/v1/metrics.
	coSrv := httptest.NewServer(NewCoordinatorServer(co).Handler())
	t.Cleanup(coSrv.Close)
	resp, err := http.Get(coSrv.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sm ServerMetrics
	if err := json.NewDecoder(resp.Body).Decode(&sm); err != nil {
		t.Fatal(err)
	}
	if sm.Cluster == nil || sm.Cluster.Nodes != 3 || sm.Cluster.Hedges == 0 || len(sm.Cluster.PerNode) != 3 {
		t.Errorf("/api/v1/metrics cluster section %+v: want 3 nodes with hedges", sm.Cluster)
	}
}

// TestClusterSlowNodePartial: with no replicas to fail over to, a node
// past the per-node deadline costs its partitions only — the scatter
// returns promptly with the live partitions' ranking flagged Partial, and
// the retriever surface converts the flag into ErrPartial rather than
// passing off a shortened list as complete.
func TestClusterSlowNodePartial(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	injs := make([]*FaultInjector, 3)
	urls := startClusterNodes(t, g, 3, 1, func(i int, h http.Handler) http.Handler {
		injs[i] = &FaultInjector{Next: h}
		return injs[i]
	})
	const deadline = 150 * time.Millisecond
	co := dialCluster(t, g, urls, 1, deadline)
	injs[2].SetLatency(2 * time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	seed := g.Corpus.Entities[0].SeedTokens()
	start := time.Now()
	resp, err := co.Scatter(ctx, seed, nil, 0)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("scatter with one slow node errored: %v", err)
	}
	if !resp.Partial {
		t.Fatal("slow node past the deadline did not flag the result partial")
	}
	if len(resp.Hits) == 0 {
		t.Fatal("partial result carried no hits from the live partitions")
	}
	if elapsed > 1500*time.Millisecond {
		t.Errorf("scatter took %v: the slow node convoyed the whole query past its %v deadline", elapsed, deadline)
	}
	if m := co.Metrics(); m.Partials == 0 {
		t.Errorf("metrics %+v: partial scatter not counted", m)
	}

	if _, err := co.SearchWithSeedErr(ctx, seed, nil); !errors.Is(err, ErrPartial) {
		t.Errorf("retriever surface returned %v for a partial scatter, want ErrPartial", err)
	}

	// The HTTP surface serves the flagged partial instead.
	coSrv := httptest.NewServer(NewCoordinatorServer(co).Handler())
	t.Cleanup(coSrv.Close)
	hresp, err := http.Get(coSrv.URL + "/api/v1/search?seed=" + strings.ReplaceAll(textproc.JoinQuery(seed), " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var sr SearchResponse
	if err := json.NewDecoder(hresp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Partial || len(sr.Hits) == 0 {
		t.Errorf("HTTP surface served %+v: want a flagged, non-empty partial", sr)
	}
}

// TestClusterScatterHonorsCallerCtx: the caller's context bounds the whole
// fan-out — per-node retries and replica walks do not outlive it.
func TestClusterScatterHonorsCallerCtx(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	injs := make([]*FaultInjector, 3)
	urls := startClusterNodes(t, g, 3, 2, func(i int, h http.Handler) http.Handler {
		injs[i] = &FaultInjector{Next: h}
		return injs[i]
	})
	co := dialCluster(t, g, urls, 2, 5*time.Second)
	for _, inj := range injs {
		inj.SetLatency(2 * time.Second)
	}

	seed := g.Corpus.Entities[0].SeedTokens()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = co.SearchWithSeedErr(ctx, seed, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("scatter under an expired caller ctx reported success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("scatter error %v does not surface the caller's deadline", err)
	}
	if elapsed > 1500*time.Millisecond {
		t.Errorf("scatter outlived its caller's 100ms ctx by %v", elapsed)
	}

	// Already-dead ctx: no attempts at all.
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	before := co.Metrics().Scatters
	if _, err := co.SearchWithSeedErr(dead, seed, nil); err == nil {
		t.Fatal("scatter under a canceled ctx reported success")
	}
	if co.Metrics().Scatters != before+1 {
		t.Log("canceled-ctx scatter still counted (acceptable)")
	}
}

// TestClusterEndpointGating: cluster endpoints 501 on a plain server, the
// node-local search answers 503 (retryable) until the coordinator's stat
// push lands, and an implausible push is rejected 400.
func TestClusterEndpointGating(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))

	// Plain server: not a node, not a coordinator.
	plain := httptest.NewServer(NewServer(g.Corpus, engine).Handler())
	t.Cleanup(plain.Close)
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{"GET", "/api/v1/cluster/search?part=0&q=x", http.StatusNotImplemented},
		{"GET", "/api/v1/cluster/stats", http.StatusNotImplemented},
		{"POST", "/api/v1/cluster/stats", http.StatusNotImplemented},
	} {
		req, _ := http.NewRequest(tc.method, plain.URL+tc.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s on plain server = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}

	// Node before any stat push: cluster search is a retryable 503.
	urls := startClusterNodes(t, g, 2, 1, nil)
	resp, err := http.Get(urls[0] + "/api/v1/cluster/search?part=0&q=research")
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !env.Error.Retryable {
		t.Errorf("pre-push cluster search = %d retryable=%v, want retryable 503", resp.StatusCode, env.Error.Retryable)
	}

	// Implausible global stats are rejected before they poison scoring.
	bad, _ := json.Marshal(GlobalStatsPayload{NumDocs: 0, TotalTokens: 1, NumTerms: 1, Mu: 1, TopK: 1})
	presp, err := http.Post(urls[0]+"/api/v1/cluster/stats", "application/json", strings.NewReader(string(bad)))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusBadRequest {
		t.Errorf("implausible stats push = %d, want 400", presp.StatusCode)
	}

	// An unowned partition is a caller error, not a silent empty result.
	co := dialCluster(t, g, urls, 1, 0)
	_ = co // the dial's push makes node 0 ready
	resp2, err := http.Get(urls[0] + "/api/v1/cluster/search?part=1&q=research")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("search of unowned partition = %d, want 400", resp2.StatusCode)
	}
}
