package webapi

// The node half of distributed retrieval (see coordinator.go for the
// scatter-gather side). A ClusterNode owns the partitions the consistent-
// hash ring assigns to it — its primary partition plus the partitions it
// replicates — each behind its own partition-local index and engine. Local
// scoring only becomes globally comparable after the coordinator pushes
// the aggregated CollectionStats (p(t|C), document frequencies, corpus
// size and the global μ all read collection totals); until then the node
// answers cluster searches 503 (retryable), so a racing coordinator just
// retries instead of merging incomparable scores.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/store"
	"l2q/internal/textproc"
)

// NodeStatsPayload is the GET /api/v1/cluster/stats response of a node:
// the collection statistics of its PRIMARY partition only. Primaries are
// disjoint and cover the corpus, so the coordinator's field-wise sums
// reproduce the single-node statistics exactly; reporting replicated
// partitions too would double-count them.
type NodeStatsPayload struct {
	Node        int            `json:"node"`
	Nodes       int            `json:"nodes"`
	Replicas    int            `json:"replicas"`
	Partition   int            `json:"partition"`
	NumDocs     int            `json:"numDocs"`
	TotalTokens int            `json:"totalTokens"`
	TopK        int            `json:"topK"`
	CollFreq    map[string]int `json:"collFreq"`
	DocFreq     map[string]int `json:"docFreq"`
}

// GlobalStatsPayload is the POST /api/v1/cluster/stats body: the
// coordinator's aggregated collection model, pushed to every node at
// registration. Applying it re-bases each partition engine onto the
// global statistics and μ, after which per-node scores are bit-identical
// to the single-node engine's.
type GlobalStatsPayload struct {
	NumDocs     int            `json:"numDocs"`
	TotalTokens int            `json:"totalTokens"`
	NumTerms    int            `json:"numTerms"`
	Mu          float64        `json:"mu"`
	TopK        int            `json:"topK"`
	CollFreq    map[string]int `json:"collFreq"`
	DocFreq     map[string]int `json:"docFreq"`
}

// ClusterNode serves one node's slice of a doc-partitioned cluster: the
// partition engines for every partition the ring assigns to this node
// (primary first, then replicas). Mount it on a Server via the Node field
// to expose the /api/v1/cluster/* endpoints. Safe for concurrent use.
type ClusterNode struct {
	spec search.ClusterSpec
	ring *search.Ring
	topK int

	// primary is the primary partition's index — the node's contribution
	// to the coordinator's stat aggregation.
	primary *search.Index

	mu      sync.RWMutex
	engines map[int]*search.Engine // partition → engine (rebased after stat push)
	ready   bool
}

// NewClusterNode partitions c over the ring described by spec and builds
// one index + engine per partition this node owns. topK ≤ 0 picks
// search.DefaultTopK. The corpus must be the same (same pages, same IDs)
// on every node — partitioning is deterministic, so each node extracts
// its own slices from the shared store.
func NewClusterNode(c *corpus.Corpus, spec search.ClusterSpec, opts search.Options, topK int) (*ClusterNode, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if topK <= 0 {
		topK = search.DefaultTopK
	}
	ring := search.NewRing(spec.Nodes, spec.Replicas, 0)
	groups := ring.PartitionPages(c.Pages)
	n := &ClusterNode{
		spec:    spec,
		ring:    ring,
		topK:    topK,
		engines: make(map[int]*search.Engine, spec.Replicas),
	}
	for _, part := range ring.OwnedBy(spec.NodeID) {
		idx := search.BuildIndexOpts(groups[part], opts)
		n.engines[part] = search.NewEngineOpts(idx, opts).WithTopK(topK)
		if part == spec.NodeID {
			n.primary = idx
		}
	}
	return n, nil
}

// Spec returns the node's cluster geometry.
func (n *ClusterNode) Spec() search.ClusterSpec { return n.spec }

// Ready reports whether the coordinator's global stats have been applied.
func (n *ClusterNode) Ready() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ready
}

// LocalStats builds the node's registration report from its primary
// partition (see NodeStatsPayload for why replicas are excluded).
func (n *ClusterNode) LocalStats() NodeStatsPayload {
	st := search.StatsOf(n.primary)
	return NodeStatsPayload{
		Node:        n.spec.NodeID,
		Nodes:       n.spec.Nodes,
		Replicas:    n.spec.Replicas,
		Partition:   n.spec.NodeID,
		NumDocs:     st.NumDocs,
		TotalTokens: st.TotalTokens,
		TopK:        n.topK,
		CollFreq:    st.CollFreq,
		DocFreq:     st.DocFreq,
	}
}

// ApplyGlobalStats rebases every partition engine onto the coordinator's
// aggregated collection model and marks the node ready. Idempotent — a
// coordinator retrying its push is harmless.
func (n *ClusterNode) ApplyGlobalStats(g *GlobalStatsPayload) error {
	if g.NumDocs <= 0 || g.TotalTokens <= 0 || g.NumTerms <= 0 || g.Mu <= 0 || g.TopK <= 0 {
		return fmt.Errorf("cluster: implausible global stats (docs=%d toks=%d terms=%d mu=%v k=%d)",
			g.NumDocs, g.TotalTokens, g.NumTerms, g.Mu, g.TopK)
	}
	st := &search.CollectionStats{
		CollFreq:    g.CollFreq,
		DocFreq:     g.DocFreq,
		TotalTokens: g.TotalTokens,
		NumTerms:    g.NumTerms,
		NumDocs:     g.NumDocs,
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for part, e := range n.engines {
		n.engines[part] = e.WithCollectionStats(st).WithMu(g.Mu).WithTopK(g.TopK)
	}
	n.topK = g.TopK
	n.ready = true
	return nil
}

// searchPartition runs a seeded search over one owned partition,
// returning the partition-local top-k. The bool reports readiness; the
// error reports an unowned partition.
func (n *ClusterNode) searchPartition(part int, seed, query []textproc.Token, k int) ([]search.Result, bool, error) {
	n.mu.RLock()
	ready := n.ready
	e := n.engines[part]
	n.mu.RUnlock()
	if !ready {
		return nil, false, nil
	}
	if e == nil {
		return nil, true, fmt.Errorf("partition %d is not owned by node %d", part, n.spec.NodeID)
	}
	if k != e.TopK() {
		e = e.WithTopK(k)
	}
	return e.SearchWithSeed(seed, query), true, nil
}

// handleClusterStats serves a node's local stats (GET) and accepts the
// coordinator's global stats push (POST). On a coordinator server the GET
// returns the aggregated global model instead (introspection); POST is a
// node-only operation.
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if s.Node == nil {
			writeError(w, http.StatusNotImplemented, "cluster stats push not supported: not a cluster node")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxResponseBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
		var g GlobalStatsPayload
		if err := json.Unmarshal(body, &g); err != nil {
			writeError(w, http.StatusBadRequest, "bad global stats payload: "+err.Error())
			return
		}
		if err := s.Node.ApplyGlobalStats(&g); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
		return
	}
	if s.cluster != nil {
		writeJSON(w, s.cluster.GlobalStats())
		return
	}
	if s.Node == nil {
		writeError(w, http.StatusNotImplemented, "cluster endpoints not enabled (start with a cluster spec)")
		return
	}
	st := s.Node.LocalStats()
	s.respond(w, r, wireNodeStats, func(e *store.Enc) { encodeNodeStatsWire(e, st) }, st)
}

// handleClusterSearch serves one partition's local top-k — the node-local
// scatter target the coordinator fans out to. 503 (retryable) until the
// global stats are applied: scores computed before the push would not be
// comparable across nodes.
func (s *Server) handleClusterSearch(w http.ResponseWriter, r *http.Request) {
	if s.Node == nil {
		writeError(w, http.StatusNotImplemented, "cluster search not supported: not a cluster node")
		return
	}
	qv := r.URL.Query()
	qToks := queryParamTokens(qv, "q")
	seedToks := queryParamTokens(qv, "seed")
	if len(qToks) == 0 && len(seedToks) == 0 {
		writeError(w, http.StatusBadRequest, "missing query: provide q and/or seed")
		return
	}
	part, err := strconv.Atoi(qv.Get("part"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad part parameter")
		return
	}
	k := s.Node.topK
	if kStr := qv.Get("k"); kStr != "" {
		k, err = strconv.Atoi(kStr)
		if err != nil || k <= 0 || k > 100 {
			writeError(w, http.StatusBadRequest, "bad k parameter")
			return
		}
	}
	res, ready, err := s.Node.searchPartition(part, seedToks, qToks, k)
	if !ready {
		writeError(w, http.StatusServiceUnavailable, "collection stats not yet distributed by the coordinator")
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := SearchResponse{Query: textproc.JoinQuery(qToks), Seed: textproc.JoinQuery(seedToks), Hits: make([]SearchHit, 0, len(res))}
	for _, h := range res {
		resp.Hits = append(resp.Hits, SearchHit{
			PageID: h.Page.ID, URL: h.Page.URL, Title: h.Page.Title, Score: h.Score,
		})
	}
	s.respond(w, r, wireSearch, func(e *store.Enc) { encodeSearchWire(e, resp) }, resp)
}

// Partitions returns the partitions this node serves (primary plus
// replicated), in ascending order.
func (n *ClusterNode) Partitions() []int { return n.sortedParts() }

// sortedParts returns a node's owned partitions in ascending order (for
// log lines and tests).
func (n *ClusterNode) sortedParts() []int {
	n.mu.RLock()
	out := make([]int, 0, len(n.engines))
	for p := range n.engines {
		out = append(out, p)
	}
	n.mu.RUnlock()
	sort.Ints(out)
	return out
}
