package webapi

// Server-side batch harvesting: POST /api/harvest runs pipelined L2Q
// sessions next to the index (internal/pipeline's interleaved
// select/fetch scheduler) and streams per-iteration progress as NDJSON.
// Shipping the harvest to the data inverts the remote-client topology: one
// POST replaces the per-query per-page request traffic of a client-side
// run, which is the right trade when the operator of the search API also
// runs the harvest (the ROADMAP's serving scenario).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/pipeline"
	"l2q/internal/types"
)

// HarvestBackend supplies everything the batch-harvest endpoint needs
// beyond the server's corpus and engine: the L2Q configuration, the
// materialized relevance functions, the type system, and (typically lazily
// learned and cached) domain models. Assign it to Server.Harvest to enable
// the endpoint; a nil backend leaves it disabled (501).
type HarvestBackend struct {
	// Cfg is the L2Q model configuration; its Tokenizer must match the
	// served corpus.
	Cfg core.Config
	// Aspects lists the harvestable aspects.
	Aspects []corpus.Aspect
	// Y returns the materialized relevance function for an aspect.
	Y func(corpus.Aspect) func(*corpus.Page) bool
	// Rec is the type system for templates; nil disables templates.
	Rec types.Recognizer
	// DomainModel returns the domain model for an aspect; a nil func (or
	// nil model) harvests without domain awareness. Successful results
	// are memoized per aspect inside the backend, so the func may learn
	// from scratch on every call — it runs at most once per aspect
	// (errors are not cached; the next request retries).
	DomainModel func(corpus.Aspect) (*core.DomainModel, error)

	dmMu    sync.Mutex
	dmCache map[corpus.Aspect]*core.DomainModel
	// MaxSessions bounds the entities of one request (default 64).
	MaxSessions int
	// MaxQueries bounds a request's per-entity query budget (default 50).
	MaxQueries int
	// SelectWorkers and FetchWorkers tune the pipeline scheduler; zero
	// values pick pipeline.Config's defaults.
	SelectWorkers, FetchWorkers int
}

func (hb *HarvestBackend) maxSessions() int {
	if hb.MaxSessions > 0 {
		return hb.MaxSessions
	}
	return 64
}

func (hb *HarvestBackend) maxQueries() int {
	if hb.MaxQueries > 0 {
		return hb.MaxQueries
	}
	return 50
}

// domainModel memoizes DomainModel per aspect (see the field doc).
func (hb *HarvestBackend) domainModel(a corpus.Aspect) (*core.DomainModel, error) {
	if hb.DomainModel == nil {
		return nil, nil
	}
	hb.dmMu.Lock()
	defer hb.dmMu.Unlock()
	if dm, ok := hb.dmCache[a]; ok {
		return dm, nil
	}
	dm, err := hb.DomainModel(a)
	if err != nil {
		return nil, err
	}
	if hb.dmCache == nil {
		hb.dmCache = make(map[corpus.Aspect]*core.DomainModel)
	}
	hb.dmCache[a] = dm
	return dm, nil
}

func (hb *HarvestBackend) hasAspect(a corpus.Aspect) bool {
	for _, known := range hb.Aspects {
		if known == a {
			return true
		}
	}
	return false
}

// HarvestRequest is the POST /api/harvest body.
type HarvestRequest struct {
	// Entities are the harvest targets; unknown IDs produce per-entity
	// error events, not a failed request.
	Entities []corpus.EntityID `json:"entities"`
	// Aspect is the target aspect (must be one of the backend's Aspects).
	Aspect string `json:"aspect"`
	// Strategy names the selection strategy (default L2QBAL); see
	// SelectorByName.
	Strategy string `json:"strategy,omitempty"`
	// NQueries is the per-entity query budget after the seed.
	NQueries int `json:"nQueries"`
	// NoDomain disables domain awareness even when the backend can learn
	// a domain model.
	NoDomain bool `json:"noDomain,omitempty"`
}

// HarvestEvent is one NDJSON line of the /api/harvest response stream.
// Type discriminates: "progress" (one harvest iteration of one entity),
// "entity" (one entity finished, with its fired queries and gathered
// pages), "error" (one entity failed), and "done" (the batch summary,
// always the last line).
type HarvestEvent struct {
	Type string `json:"type"`
	// Entity is set on progress/entity/error events.
	Entity corpus.EntityID `json:"entity"`
	// Progress fields (mirroring core.TraceRecord).
	Iteration  int    `json:"iteration,omitempty"`
	Query      string `json:"query,omitempty"`
	NewPages   int    `json:"newPages,omitempty"`
	TotalPages int    `json:"totalPages,omitempty"`
	// Entity-completion fields.
	Fired []string        `json:"fired,omitempty"`
	Pages []corpus.PageID `json:"pages,omitempty"`
	// Done-summary fields.
	Entities int `json:"entities,omitempty"`
	Failed   int `json:"failed,omitempty"`
	// Error carries the failure of an "error" event.
	Error string `json:"error,omitempty"`
}

// selectorCtors are the stateless core strategies the harvest endpoint can
// run (baselines needing trained side models are client-side concerns).
var selectorCtors = map[string]func() core.Selector{
	"RND":    core.NewRND,
	"P":      core.NewP,
	"R":      core.NewR,
	"P+Q":    core.NewPQ,
	"R+Q":    core.NewRQ,
	"P+T":    core.NewPT,
	"R+T":    core.NewRT,
	"L2QP":   core.NewL2QP,
	"L2QR":   core.NewL2QR,
	"L2QBAL": core.NewL2QBAL,
}

// SelectorByName resolves a strategy name (case-insensitive; the §VI-B
// names: RND, P, R, P+q, R+q, P+t, R+t, L2QP, L2QR, L2QBAL) to a fresh
// stateless selector.
func SelectorByName(name string) (core.Selector, bool) {
	ctor, ok := selectorCtors[strings.ToUpper(name)]
	if !ok {
		return nil, false
	}
	return ctor(), true
}

func (s *Server) handleHarvest(w http.ResponseWriter, r *http.Request) {
	hb := s.Harvest
	if hb == nil {
		http.Error(w, "harvesting not enabled on this server", http.StatusNotImplemented)
		return
	}
	var req HarvestRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Entities) == 0 {
		http.Error(w, "no entities requested", http.StatusBadRequest)
		return
	}
	if len(req.Entities) > hb.maxSessions() {
		http.Error(w, fmt.Sprintf("too many entities: %d > %d", len(req.Entities), hb.maxSessions()), http.StatusBadRequest)
		return
	}
	if req.NQueries < 0 || req.NQueries > hb.maxQueries() {
		http.Error(w, fmt.Sprintf("nQueries out of range [0, %d]", hb.maxQueries()), http.StatusBadRequest)
		return
	}
	aspect := corpus.Aspect(req.Aspect)
	if !hb.hasAspect(aspect) {
		http.Error(w, fmt.Sprintf("unknown aspect %q (serving %v)", req.Aspect, hb.Aspects), http.StatusBadRequest)
		return
	}
	strategy := req.Strategy
	if strategy == "" {
		strategy = "L2QBAL"
	}
	sel, ok := SelectorByName(strategy)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown strategy %q", req.Strategy), http.StatusBadRequest)
		return
	}
	var dm *core.DomainModel
	if !req.NoDomain {
		var err error
		if dm, err = hb.domainModel(aspect); err != nil {
			http.Error(w, "domain model: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	y := hb.Y(aspect)

	// The harvest obeys both the caller (request context) and the server's
	// lifecycle: Shutdown cancels s.ctx, which aborts the pipeline run and
	// lets the graceful drain complete instead of deadlocking on a stream
	// that would otherwise outlive the shutdown deadline.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.ctx, cancel)
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(ev HarvestEvent) {
		wmu.Lock()
		defer wmu.Unlock()
		// Roll the write deadline forward per event: the stream may run
		// arbitrarily long, but a reader that stops consuming is cut off
		// within writeTimeout (deadline errors are best-effort — not
		// every ResponseWriter supports them).
		_ = rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err := enc.Encode(ev); err != nil {
			// The reader is gone (deadline expired or connection reset):
			// abort the batch rather than burning the remaining sessions
			// into a dead stream. A stalled connection does not cancel
			// r.Context() by itself, so this write failure is the signal.
			cancel()
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}

	// Unknown entities fail individually (an explicit per-entity error
	// event), never the whole batch.
	failed := 0
	var jobs []pipeline.Job
	var jobEntities []*corpus.Entity
	for _, id := range req.Entities {
		e := s.corpus.Entity(id)
		if e == nil {
			failed++
			emit(HarvestEvent{Type: "error", Entity: id, Error: fmt.Sprintf("unknown entity id %d", id)})
			continue
		}
		sess := core.NewSession(hb.Cfg, s.engine, e, aspect, y, dm, hb.Rec, uint64(e.ID)+1)
		entity := e.ID
		sess.Trace = func(tr core.TraceRecord) {
			emit(HarvestEvent{
				Type:       "progress",
				Entity:     entity,
				Iteration:  tr.Iteration,
				Query:      string(tr.Query),
				NewPages:   tr.NewPages,
				TotalPages: tr.TotalPages,
			})
		}
		jobs = append(jobs, pipeline.Job{Session: sess, Selector: sel, NQueries: req.NQueries})
		jobEntities = append(jobEntities, e)
	}

	results := pipeline.Run(ctx, pipeline.Config{
		SelectWorkers: hb.SelectWorkers,
		FetchWorkers:  hb.FetchWorkers,
	}, jobs)

	for i, res := range results {
		e := jobEntities[i]
		if res.Err != nil {
			failed++
			emit(HarvestEvent{Type: "error", Entity: e.ID, Error: res.Err.Error()})
			continue
		}
		fired := make([]string, len(res.Fired))
		for j, q := range res.Fired {
			fired[j] = string(q)
		}
		var pages []corpus.PageID
		for _, p := range res.Job.Session.Pages() {
			pages = append(pages, p.ID)
		}
		emit(HarvestEvent{Type: "entity", Entity: e.ID, Fired: fired, Pages: pages})
	}
	emit(HarvestEvent{Type: "done", Entities: len(req.Entities), Failed: failed})
}

// HarvestBatch runs a server-side batch harvest, delivering each streamed
// NDJSON event to onEvent in arrival order. A non-nil onEvent error aborts
// the stream and is returned. Unlike the GET surface, the POST does real
// per-request work and is therefore not retried; transient-fault
// resilience lives inside the server-side sessions, which fetch from the
// in-process engine. The stream is unbounded in time, so cancellation (and
// the caller's patience) comes from ctx, not the client's per-request
// timeout.
func (c *Client) HarvestBatch(ctx context.Context, req HarvestRequest, onEvent func(HarvestEvent) error) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("webapi: harvest: encode request: %w", err)
	}
	const path = "/api/harvest"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("webapi: harvest: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.met.requests.Add(1)
	// A dedicated transport-less client: c.http's per-request Timeout
	// would sever long-running streams mid-harvest.
	resp, err := (&http.Client{}).Do(hreq)
	if err != nil {
		c.met.errors.Add(1)
		return &TransportError{Op: "harvest", Path: path, Attempts: 1, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		c.met.errors.Add(1)
		return &TransportError{Op: "harvest", Path: path, Attempts: 1, Status: resp.StatusCode,
			Err: fmt.Errorf("%s", strings.TrimSpace(string(snippet)))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxResponseBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev HarvestEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			c.met.errors.Add(1)
			return &TransportError{Op: "harvest", Path: path, Attempts: 1,
				Err: fmt.Errorf("malformed event %q: %w", line, err)}
		}
		if onEvent != nil {
			if err := onEvent(ev); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		c.met.errors.Add(1)
		return &TransportError{Op: "harvest", Path: path, Attempts: 1, Err: err}
	}
	return nil
}
