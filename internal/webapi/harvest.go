package webapi

// Server-side batch harvesting: POST /api/harvest runs pipelined L2Q
// sessions next to the index (internal/pipeline's interleaved
// select/fetch scheduler) and streams per-iteration progress as NDJSON.
// Shipping the harvest to the data inverts the remote-client topology: one
// POST replaces the per-query per-page request traffic of a client-side
// run, which is the right trade when the operator of the search API also
// runs the harvest (the ROADMAP's serving scenario).
//
// Every harvest — synchronous (/api/harvest) or asynchronous (/api/jobs,
// see jobs.go) — runs on the server's ONE shared pipeline.Scheduler
// instead of per-request worker pools: concurrent requests queue FIFO
// behind HarvestBackend.MaxActive admission control and share the pools
// fairly instead of oversubscribing GOMAXPROCS² goroutines.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/pipeline"
	"l2q/internal/store"
	"l2q/internal/types"
)

// HarvestBackend supplies everything the batch-harvest endpoint needs
// beyond the server's corpus and engine: the L2Q configuration, the
// materialized relevance functions, the type system, and (typically lazily
// learned and cached) domain models. Assign it to Server.Harvest to enable
// the endpoint; a nil backend leaves it disabled (501).
type HarvestBackend struct {
	// Cfg is the L2Q model configuration; its Tokenizer must match the
	// served corpus.
	Cfg core.Config
	// Aspects lists the harvestable aspects.
	Aspects []corpus.Aspect
	// Y returns the materialized relevance function for an aspect.
	Y func(corpus.Aspect) func(*corpus.Page) bool
	// Rec is the type system for templates; nil disables templates.
	Rec types.Recognizer
	// DomainModel returns the domain model for an aspect; a nil func (or
	// nil model) harvests without domain awareness. Successful results
	// are memoized per aspect inside the backend, so the func may learn
	// from scratch on every call — it runs at most once per aspect
	// (errors are not cached; the next request retries).
	DomainModel func(corpus.Aspect) (*core.DomainModel, error)

	dmMu    sync.Mutex
	dmCache map[corpus.Aspect]*core.DomainModel
	// MaxSessions bounds the entities of one request (default 64).
	MaxSessions int
	// MaxQueries bounds a request's per-entity query budget (default 50).
	MaxQueries int
	// SelectWorkers and FetchWorkers size the server's shared scheduler;
	// zero values pick pipeline.Config's defaults. MaxActive bounds the
	// jobs admitted concurrently across all requests (admission control;
	// 0 = unlimited). All three are read once, when the server starts
	// its scheduler.
	SelectWorkers, FetchWorkers int
	MaxActive                   int
}

func (hb *HarvestBackend) maxSessions() int {
	if hb.MaxSessions > 0 {
		return hb.MaxSessions
	}
	return 64
}

func (hb *HarvestBackend) maxQueries() int {
	if hb.MaxQueries > 0 {
		return hb.MaxQueries
	}
	return 50
}

// Preload seeds the per-aspect domain-model cache with already-trained
// models (typically restored from a store.DomainArtifact), so the server
// serves its first harvest warm instead of paying a from-scratch
// LearnDomainScored per aspect. Preloaded aspects never invoke the
// DomainModel func; aspects absent from models still learn lazily.
func (hb *HarvestBackend) Preload(models map[corpus.Aspect]*core.DomainModel) {
	hb.dmMu.Lock()
	defer hb.dmMu.Unlock()
	if hb.dmCache == nil {
		hb.dmCache = make(map[corpus.Aspect]*core.DomainModel, len(models))
	}
	for a, dm := range models {
		if dm != nil {
			hb.dmCache[a] = dm
		}
	}
}

// domainModel memoizes DomainModel per aspect (see the field doc).
func (hb *HarvestBackend) domainModel(a corpus.Aspect) (*core.DomainModel, error) {
	hb.dmMu.Lock()
	defer hb.dmMu.Unlock()
	if dm, ok := hb.dmCache[a]; ok {
		return dm, nil
	}
	if hb.DomainModel == nil {
		return nil, nil
	}
	dm, err := hb.DomainModel(a)
	if err != nil {
		return nil, err
	}
	if hb.dmCache == nil {
		hb.dmCache = make(map[corpus.Aspect]*core.DomainModel)
	}
	hb.dmCache[a] = dm
	return dm, nil
}

func (hb *HarvestBackend) hasAspect(a corpus.Aspect) bool {
	for _, known := range hb.Aspects {
		if known == a {
			return true
		}
	}
	return false
}

// BudgetSpec is the wire form of pipeline.BudgetPolicy: how a request's
// query budget is allocated across its entities.
type BudgetSpec struct {
	// Mode is "fixed" (default: every entity fires exactly NQueries) or
	// "adaptive" (the batch pools NQueries×entities and reallocates each
	// round toward the highest marginal ΔR_E(Φ); saturated entities
	// donate their remainder).
	Mode string `json:"mode,omitempty"`
	// TotalQueries overrides the adaptive mode's pooled budget
	// (default: NQueries × entities).
	TotalQueries int `json:"totalQueries,omitempty"`
	// MinGain and Patience tune the saturation rule; MaxPerEntity caps
	// one entity's adaptive spend. Zero values pick the pipeline
	// defaults.
	MinGain      float64 `json:"minGain,omitempty"`
	Patience     int     `json:"patience,omitempty"`
	MaxPerEntity int     `json:"maxPerEntity,omitempty"`
}

func (bs *BudgetSpec) policy() (pipeline.BudgetPolicy, error) {
	if bs == nil {
		return pipeline.BudgetPolicy{}, nil
	}
	p := pipeline.BudgetPolicy{
		TotalQueries: bs.TotalQueries,
		MinGain:      bs.MinGain,
		Patience:     bs.Patience,
		MaxPerEntity: bs.MaxPerEntity,
	}
	switch strings.ToLower(bs.Mode) {
	case "", "fixed":
		p.Mode = pipeline.BudgetFixed
	case "adaptive":
		p.Mode = pipeline.BudgetAdaptive
	default:
		return p, fmt.Errorf("unknown budget mode %q (fixed or adaptive)", bs.Mode)
	}
	return p, nil
}

// HarvestRequest is the POST /api/harvest (and POST /api/jobs) body.
type HarvestRequest struct {
	// Entities are the harvest targets; unknown IDs produce per-entity
	// error events, not a failed request.
	Entities []corpus.EntityID `json:"entities"`
	// Aspect is the target aspect (must be one of the backend's Aspects).
	Aspect string `json:"aspect"`
	// Strategy names the selection strategy (default L2QBAL); see
	// SelectorByName.
	Strategy string `json:"strategy,omitempty"`
	// NQueries is the per-entity query budget after the seed.
	NQueries int `json:"nQueries"`
	// NoDomain disables domain awareness even when the backend can learn
	// a domain model.
	NoDomain bool `json:"noDomain,omitempty"`
	// Budget selects the allocation policy (nil/zero: fixed-equal).
	Budget *BudgetSpec `json:"budget,omitempty"`
	// Resume replays checkpointed sessions before harvesting: an entity
	// with a matching checkpoint starts from its recorded context Φ and
	// fires only its remaining budget (NQueries − |Fired|). A checkpoint
	// that fails replay verification yields a per-entity error event.
	Resume []core.Checkpoint `json:"resume,omitempty"`
}

// HarvestEvent is one NDJSON line of the /api/harvest response stream
// (and of the /api/jobs event log). Type discriminates: "progress" (one
// harvest iteration of one entity), "entity" (one entity finished, with
// its fired queries and gathered pages), "error" (one entity failed), and
// "done" (the batch summary, always the last line).
type HarvestEvent struct {
	Type string `json:"type"`
	// Entity is set on progress/entity/error events.
	Entity corpus.EntityID `json:"entity"`
	// Progress fields (mirroring core.TraceRecord).
	Iteration  int    `json:"iteration,omitempty"`
	Query      string `json:"query,omitempty"`
	NewPages   int    `json:"newPages,omitempty"`
	TotalPages int    `json:"totalPages,omitempty"`
	// Entity-completion fields.
	Fired []string        `json:"fired,omitempty"`
	Pages []corpus.PageID `json:"pages,omitempty"`
	// Done-summary fields.
	Entities int `json:"entities,omitempty"`
	Failed   int `json:"failed,omitempty"`
	// Error carries the failure of an "error" event.
	Error string `json:"error,omitempty"`
}

// selectorCtors are the stateless core strategies the harvest endpoint can
// run (baselines needing trained side models are client-side concerns).
var selectorCtors = map[string]func() core.Selector{
	"RND":    core.NewRND,
	"P":      core.NewP,
	"R":      core.NewR,
	"P+Q":    core.NewPQ,
	"R+Q":    core.NewRQ,
	"P+T":    core.NewPT,
	"R+T":    core.NewRT,
	"L2QP":   core.NewL2QP,
	"L2QR":   core.NewL2QR,
	"L2QBAL": core.NewL2QBAL,
}

// SelectorByName resolves a strategy name (case-insensitive; the §VI-B
// names: RND, P, R, P+q, R+q, P+t, R+t, L2QP, L2QR, L2QBAL) to a fresh
// stateless selector.
func SelectorByName(name string) (core.Selector, bool) {
	ctor, ok := selectorCtors[strings.ToUpper(name)]
	if !ok {
		return nil, false
	}
	return ctor(), true
}

// harvestPlan is a validated harvest request: everything resolved except
// the sessions themselves.
type harvestPlan struct {
	aspect corpus.Aspect
	sel    core.Selector
	dm     *core.DomainModel
	y      func(*corpus.Page) bool
	budget pipeline.BudgetPolicy
	resume map[corpus.EntityID]core.Checkpoint
}

// planError is a user-facing validation failure with an HTTP status.
type planError struct {
	status int
	msg    string
}

func (e *planError) Error() string { return e.msg }

func planErrorf(status int, format string, args ...any) *planError {
	return &planError{status: status, msg: fmt.Sprintf(format, args...)}
}

// plan validates a harvest request against the backend's limits and
// resolves strategy, domain model, budget policy and resume checkpoints.
func (hb *HarvestBackend) plan(req HarvestRequest) (*harvestPlan, *planError) {
	if len(req.Entities) == 0 {
		return nil, planErrorf(http.StatusBadRequest, "no entities requested")
	}
	if len(req.Entities) > hb.maxSessions() {
		return nil, planErrorf(http.StatusBadRequest, "too many entities: %d > %d", len(req.Entities), hb.maxSessions())
	}
	if req.NQueries < 0 || req.NQueries > hb.maxQueries() {
		return nil, planErrorf(http.StatusBadRequest, "nQueries out of range [0, %d]", hb.maxQueries())
	}
	aspect := corpus.Aspect(req.Aspect)
	if !hb.hasAspect(aspect) {
		return nil, planErrorf(http.StatusBadRequest, "unknown aspect %q (serving %v)", req.Aspect, hb.Aspects)
	}
	strategy := req.Strategy
	if strategy == "" {
		strategy = "L2QBAL"
	}
	sel, ok := SelectorByName(strategy)
	if !ok {
		return nil, planErrorf(http.StatusBadRequest, "unknown strategy %q", req.Strategy)
	}
	budget, err := req.Budget.policy()
	if err != nil {
		return nil, planErrorf(http.StatusBadRequest, "%s", err.Error())
	}
	if max := hb.maxQueries() * len(req.Entities); budget.TotalQueries > max {
		return nil, planErrorf(http.StatusBadRequest, "budget.totalQueries out of range [0, %d]", max)
	}
	if budget.Mode == pipeline.BudgetAdaptive {
		// MaxQueries is documented as the per-entity bound; donation must
		// not let one entity absorb the whole pool past it.
		if budget.MaxPerEntity <= 0 || budget.MaxPerEntity > hb.maxQueries() {
			budget.MaxPerEntity = hb.maxQueries()
		}
	}
	p := &harvestPlan{aspect: aspect, sel: sel, budget: budget}
	if len(req.Resume) > 0 {
		p.resume = make(map[corpus.EntityID]core.Checkpoint, len(req.Resume))
		for _, cp := range req.Resume {
			if cp.Aspect != aspect {
				return nil, planErrorf(http.StatusBadRequest, "resume checkpoint for entity %d is for aspect %q, not %q", cp.Entity, cp.Aspect, aspect)
			}
			p.resume[cp.Entity] = cp
		}
	}
	if !req.NoDomain {
		dm, err := hb.domainModel(aspect)
		if err != nil {
			return nil, planErrorf(http.StatusInternalServerError, "domain model: %s", err.Error())
		}
		p.dm = dm
	}
	p.y = hb.Y(aspect)
	return p, nil
}

// buildJobs constructs one pipeline job per known entity, resuming
// checkpointed sessions. Unknown IDs and failed resumes fail individually
// (an explicit per-entity error event), never the whole batch. The
// returned entity slice is aligned with the jobs.
func (hb *HarvestBackend) buildJobs(srv *Server, req HarvestRequest, p *harvestPlan,
	emit func(HarvestEvent)) (jobs []pipeline.Job, jobEntities []*corpus.Entity, failed int) {

	for _, id := range req.Entities {
		srv.corpusMu.RLock()
		e := srv.corpus.Entity(id)
		srv.corpusMu.RUnlock()
		if e == nil {
			failed++
			emit(HarvestEvent{Type: "error", Entity: id, Error: fmt.Sprintf("unknown entity id %d", id)})
			continue
		}
		sess := core.NewSession(hb.Cfg, srv.retriever(), e, p.aspect, p.y, p.dm, hb.Rec, uint64(e.ID)+1)
		nq := req.NQueries
		if cp, ok := p.resume[e.ID]; ok {
			if err := sess.Resume(cp); err != nil {
				failed++
				emit(HarvestEvent{Type: "error", Entity: e.ID, Error: "resume: " + err.Error()})
				continue
			}
			nq -= len(cp.Fired)
			if nq < 0 {
				nq = 0
			}
		}
		entity := e.ID
		sess.Trace = func(tr core.TraceRecord) {
			emit(HarvestEvent{
				Type:       "progress",
				Entity:     entity,
				Iteration:  tr.Iteration,
				Query:      string(tr.Query),
				NewPages:   tr.NewPages,
				TotalPages: tr.TotalPages,
			})
		}
		jobs = append(jobs, pipeline.Job{Session: sess, Selector: p.sel, NQueries: nq})
		jobEntities = append(jobEntities, e)
	}
	return jobs, jobEntities, failed
}

// eventEmitter builds the streaming emit function for a harvest/job
// event stream in the request's negotiated codec: one NDJSON line per
// event (the default), or one wire frame per event. It sets the
// Content-Type and status, and returns the emit closure shared by the
// sync and async stream handlers. onDead runs when a write fails — the
// reader is gone (deadline expired or connection reset), so the caller
// aborts instead of burning the remaining work into a dead stream.
func (s *Server) eventEmitter(w http.ResponseWriter, r *http.Request, onDead func()) func(HarvestEvent) {
	wire := s.wantsWire(r)
	if wire {
		w.Header().Set("Content-Type", wireContentType)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	rc := http.NewResponseController(w)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	return func(ev HarvestEvent) {
		wmu.Lock()
		defer wmu.Unlock()
		// Roll the write deadline forward per event: the stream may run
		// arbitrarily long, but a reader that stops consuming is cut off
		// within writeTimeout (deadline errors are best-effort — not
		// every ResponseWriter supports them).
		_ = rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		var werr error
		if wire {
			_, werr = w.Write(marshalFrame(wireEvent, s.compressMin(), func(e *store.Enc) { encodeEventWire(e, ev) }))
		} else {
			werr = enc.Encode(ev)
		}
		if werr != nil {
			// A stalled connection does not cancel r.Context() by
			// itself, so this write failure is the signal.
			onDead()
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

func (s *Server) handleHarvest(w http.ResponseWriter, r *http.Request) {
	hb := s.Harvest
	if hb == nil {
		writeError(w, http.StatusNotImplemented, "harvesting not enabled on this server")
		return
	}
	var req HarvestRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	p, perr := hb.plan(req)
	if perr != nil {
		writeError(w, perr.status, perr.msg)
		return
	}

	// The harvest obeys both the caller (request context) and the server's
	// lifecycle: Shutdown cancels s.ctx, which aborts the scheduler batch
	// and lets the graceful drain complete instead of deadlocking on a
	// stream that would otherwise outlive the shutdown deadline.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.ctx, cancel)
	defer stop()

	emit := s.eventEmitter(w, r, cancel)

	jobs, jobEntities, failed := hb.buildJobs(s, req, p, emit)

	// ONE shared scheduler for every request: admission control and fair
	// share instead of a fresh per-request worker pool.
	results := s.submitHarvest(ctx, jobs, pipeline.BatchOptions{Budget: p.budget})

	for i, res := range results {
		e := jobEntities[i]
		if res.Err != nil {
			failed++
			emit(HarvestEvent{Type: "error", Entity: e.ID, Error: res.Err.Error()})
			continue
		}
		fired := make([]string, len(res.Fired))
		for j, q := range res.Fired {
			fired[j] = string(q)
		}
		var pages []corpus.PageID
		for _, pg := range res.Job.Session.Pages() {
			pages = append(pages, pg.ID)
		}
		emit(HarvestEvent{Type: "entity", Entity: e.ID, Fired: fired, Pages: pages})
	}
	emit(HarvestEvent{Type: "done", Entities: len(req.Entities), Failed: failed})
}

// submitHarvest runs one batch on the server's shared scheduler and
// awaits it. A scheduler shut down mid-flight yields per-job errors.
func (s *Server) submitHarvest(ctx context.Context, jobs []pipeline.Job, opts pipeline.BatchOptions) []pipeline.Result {
	b, err := s.scheduler().Submit(ctx, jobs, opts)
	if err != nil {
		results := make([]pipeline.Result, len(jobs))
		for i := range jobs {
			results[i] = pipeline.Result{Job: &jobs[i], Err: err}
		}
		return results
	}
	return b.Await(ctx)
}

// HarvestBatch runs a server-side batch harvest, delivering each streamed
// NDJSON event to onEvent in arrival order. A non-nil onEvent error aborts
// the stream and is returned. Unlike the GET surface, the POST does real
// per-request work and is therefore not retried; transient-fault
// resilience lives inside the server-side sessions, which fetch from the
// in-process engine. The stream is unbounded in time, so cancellation (and
// the caller's patience) comes from ctx, not the client's per-request
// timeout.
func (c *Client) HarvestBatch(ctx context.Context, req HarvestRequest, onEvent func(HarvestEvent) error) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("webapi: harvest: encode request: %w", err)
	}
	path := c.api("/harvest")
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("webapi: harvest: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.wantWire() {
		hreq.Header.Set("Accept", wireContentType)
	}
	c.met.requests.Add(1)
	// A dedicated transport-less client: c.http's per-request Timeout
	// would sever long-running streams mid-harvest.
	resp, err := (&http.Client{}).Do(hreq)
	if err != nil {
		c.met.errors.Add(1)
		return &TransportError{Op: "harvest", Path: path, Attempts: 1, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := readError(resp)
		c.met.errors.Add(1)
		return &TransportError{Op: "harvest", Path: path, Attempts: 1, Status: resp.StatusCode,
			Code: se.code, Err: se}
	}
	return c.consumeEventStream(resp, "harvest", path, onEvent)
}

// consumeEventStream decodes a harvest/job event stream in whichever
// codec the server chose — wire frames or NDJSON, dispatched on the
// response Content-Type — delivering every event to onEvent in order. A
// non-nil onEvent error aborts the stream and is returned verbatim.
func (c *Client) consumeEventStream(resp *http.Response, op, path string, onEvent func(HarvestEvent) error) error {
	if strings.HasPrefix(resp.Header.Get("Content-Type"), wireContentType) {
		fr := newFrameReader(resp.Body)
		for {
			payload, err := fr.next(wireEvent)
			if err == io.EOF {
				return nil
			}
			if err != nil {
				c.met.errors.Add(1)
				return &TransportError{Op: op, Path: path, Attempts: 1, Err: err}
			}
			d := store.NewDec(payload)
			ev := decodeEventWire(d)
			if derr := d.Err(); derr != nil || !d.Done() {
				if derr == nil {
					derr = fmt.Errorf("%d trailing bytes", d.Remaining())
				}
				c.met.errors.Add(1)
				return &TransportError{Op: op, Path: path, Attempts: 1,
					Err: fmt.Errorf("malformed event frame: %w", derr)}
			}
			if onEvent != nil {
				if err := onEvent(ev); err != nil {
					return err
				}
			}
		}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxResponseBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev HarvestEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			c.met.errors.Add(1)
			return &TransportError{Op: op, Path: path, Attempts: 1,
				Err: fmt.Errorf("malformed event %q: %w", line, err)}
		}
		if onEvent != nil {
			if err := onEvent(ev); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		c.met.errors.Add(1)
		return &TransportError{Op: op, Path: path, Attempts: 1, Err: err}
	}
	return nil
}
