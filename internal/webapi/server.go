// Package webapi puts the search engine behind a real HTTP boundary.
//
// The paper's harvester talks to a commercial search API and downloads
// result pages over the network (§I: "querying a search engine and
// downloading the result pages ... require significant time and bandwidth,
// as well as a considerable financial cost to access commercial search
// APIs"). In the experiments that boundary is simulated in-process; this
// package makes it literal: Server exposes the corpus + engine as a JSON
// search API plus rendered HTML pages, and Client implements core.Retriever
// over that API — searching remotely, downloading pages as HTML, segmenting
// them with internal/html, and reproducing the engine's Dirichlet scoring
// locally from fetched collection statistics.
package webapi

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/html"
	"l2q/internal/pipeline"
	"l2q/internal/search"
	"l2q/internal/store"
	"l2q/internal/textproc"
)

// Stats is the /api/stats payload: everything a client needs to reproduce
// the engine's scoring and paging behavior.
type Stats struct {
	Domain      string  `json:"domain"`
	NumEntities int     `json:"numEntities"`
	NumPages    int     `json:"numPages"`
	NumTerms    int     `json:"numTerms"`
	TotalTokens int     `json:"totalTokens"`
	Mu          float64 `json:"mu"`
	TopK        int     `json:"topK"`
}

// SearchHit is one result in the /api/search payload.
type SearchHit struct {
	PageID corpus.PageID `json:"pageId"`
	URL    string        `json:"url"`
	Title  string        `json:"title"`
	Score  float64       `json:"score"`
}

// SearchResponse is the /api/search payload.
type SearchResponse struct {
	Query string      `json:"query"`
	Seed  string      `json:"seed,omitempty"`
	Hits  []SearchHit `json:"hits"`
	// Partial is set by a cluster coordinator when one or more partitions
	// had no reachable owner before the per-node deadline: the hits are a
	// correct ranking of the partitions that answered, flagged rather
	// than silently passed off as the full corpus ranking.
	Partial bool `json:"partial,omitempty"`
}

// EntityInfo is one row of the /api/entities payload.
type EntityInfo struct {
	ID        corpus.EntityID `json:"id"`
	Name      string          `json:"name"`
	SeedQuery string          `json:"seedQuery"`
}

// Server serves a corpus and engine over HTTP. Construct with NewServer
// (frozen corpus) or NewLiveServer (live generational index), then
// Start/Shutdown (or mount Handler on your own server). Server is safe
// for concurrent requests: a frozen corpus and engine are immutable, and
// a live server serializes corpus growth behind corpusMu while searches
// run lock-free against the live engine's epoch views.
type Server struct {
	corpus *corpus.Corpus
	engine *search.Engine
	pages  map[corpus.PageID]*corpus.Page

	// corpusMu guards corpus and pages once ingest can grow them; frozen
	// servers never take the write side.
	corpusMu sync.RWMutex

	// Log receives one line per request when non-nil.
	Log *log.Logger
	// MaxConcurrent bounds in-flight requests (default 64). Set it before
	// the first request; later changes are ignored.
	MaxConcurrent int
	// MaxInFlight, when > 0, is the admission-control bound: a request
	// arriving while MaxInFlight others are in flight is shed immediately
	// with 429 and the retryable error envelope instead of queueing
	// (/healthz is exempt so probes see an overloaded server as alive).
	// It also becomes the default MaxActive of the shared harvest
	// scheduler, so admission and job concurrency degrade together. Set
	// it before the first request; later changes are ignored.
	MaxInFlight int
	// Harvest, when non-nil, enables the POST /api/v1/harvest batch
	// endpoint (server-side pipelined sessions with streamed progress)
	// and the asynchronous jobs API (POST/GET/DELETE /api/v1/jobs).
	Harvest *HarvestBackend
	// WireDisabled turns off binary-frame negotiation: the server
	// answers every request in JSON regardless of Accept (the mixed-
	// version/debug posture).
	WireDisabled bool
	// CompressMin is the gzip threshold for wire-frame payloads: frames
	// at least this large are compressed. 0 picks DefaultCompressMin;
	// negative disables compression entirely.
	CompressMin int
	// Node, when non-nil, marks this server as one node of a doc-
	// partitioned cluster and enables the /api/v1/cluster/* endpoints
	// (partition-local search, stat registration/push). The regular
	// endpoints keep serving the node's full local corpus store.
	Node *ClusterNode
	// Live, when non-nil, serves retrieval from the generational live
	// engine instead of the frozen engine and enables POST /api/v1/ingest
	// (set by NewLiveServer; set it before the first request).
	Live *search.LiveEngine
	// Tokenizer tokenizes ingested paragraph text server-side, so
	// ingested pages carry exactly the tokens the corpus tokenizer would
	// have produced (the parity contract through the API). Nil falls back
	// to the zero tokenizer (plain word splitting).
	Tokenizer *textproc.Tokenizer

	// cluster, when non-nil, makes this a coordinator server: the regular
	// serving surface answers by scatter-gathering the cluster instead of
	// from a local engine (see NewCoordinatorServer).
	cluster *Coordinator

	semOnce sync.Once
	sem     chan struct{}

	// inflight is the MaxInFlight try-acquire semaphore (nil when
	// admission control is off); shed counts requests rejected at it.
	inflightOnce sync.Once
	inflight     chan struct{}
	shed         atomic.Int64

	http *http.Server

	// sched is the ONE shared pipeline scheduler every harvest (sync and
	// async) runs on, created lazily from the backend's worker knobs and
	// closed by Shutdown.
	schedMu sync.Mutex
	sched   *pipeline.Scheduler

	// jobs is the async jobs registry (see jobs.go).
	jobsMu  sync.Mutex
	jobsSeq int
	jobs    map[string]*serverJob

	// requests counts every request served (the /api/metrics counter).
	requests atomic.Int64

	// ctx is canceled by Shutdown so long-lived streaming handlers (the
	// batch-harvest endpoint, job event streams) terminate and let the
	// graceful drain finish.
	ctx    context.Context
	cancel context.CancelFunc
}

// scheduler returns the server's shared pipeline scheduler, starting it
// on first use from the harvest backend's worker configuration.
func (s *Server) scheduler() *pipeline.Scheduler {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	if s.sched == nil {
		cfg := pipeline.Config{}
		if s.Harvest != nil {
			cfg.SelectWorkers = s.Harvest.SelectWorkers
			cfg.FetchWorkers = s.Harvest.FetchWorkers
			cfg.MaxActive = s.Harvest.MaxActive
		}
		if cfg.MaxActive == 0 && s.MaxInFlight > 0 {
			// Admission control extends to job concurrency: excess jobs
			// wait in the scheduler's FIFO instead of thrashing workers.
			cfg.MaxActive = s.MaxInFlight
		}
		s.sched = pipeline.New(cfg)
	}
	return s.sched
}

// NewServer wires a server over a corpus and its engine.
func NewServer(c *corpus.Corpus, engine *search.Engine) *Server {
	pages := make(map[corpus.PageID]*corpus.Page, c.NumPages())
	for _, p := range c.Pages {
		pages[p.ID] = p
	}
	//l2qvet:ignore ctxbg server-lifetime root: this ctx outlives every request and is canceled by Shutdown's drain
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{corpus: c, engine: engine, pages: pages, MaxConcurrent: 64,
		ctx: ctx, cancel: cancel}
}

// NewLiveServer wires a server over a live generational engine: the
// corpus is the engine's bootstrap page set, POST /api/v1/ingest grows
// both, and every retrieval endpoint serves from the engine's current
// epoch view. tok must be the tokenizer that produced the corpus tokens —
// ingested paragraph text is tokenized server-side with it, which is what
// keeps a grown index byte-identical in rankings to a frozen rebuild.
func NewLiveServer(c *corpus.Corpus, live *search.LiveEngine, tok *textproc.Tokenizer) *Server {
	s := NewServer(c, nil)
	s.Live = live
	s.Tokenizer = tok
	return s
}

// retriever returns the serving retrieval surface: the live engine when
// configured, the frozen engine otherwise. Both implement core.Retriever
// and the allocation-free core.AppendRetriever.
func (s *Server) retriever() core.Retriever {
	if s.Live != nil {
		return s.Live
	}
	return s.engine
}

// tokenizer returns the ingest tokenizer (the zero tokenizer when unset).
func (s *Server) tokenizer() *textproc.Tokenizer {
	if s.Tokenizer != nil {
		return s.Tokenizer
	}
	return &textproc.Tokenizer{}
}

// semaphore returns the in-flight request bound, sized once from
// MaxConcurrent on first use. The once-guard (instead of the former lazy
// nil-check) makes concurrent Handler() calls race-free.
func (s *Server) semaphore() chan struct{} {
	s.semOnce.Do(func() {
		n := s.MaxConcurrent
		if n <= 0 {
			n = 64
		}
		s.sem = make(chan struct{}, n)
	})
	return s.sem
}

// writeTimeout bounds response writes. It is applied per request (and, on
// the event streams, rolled forward per event) instead of as a
// server-wide WriteTimeout, which would sever streams that outlive one
// fixed deadline. Route-specific treatment (streams exempt, everything
// else bounded) lives in the route registry — see routes.go.
const writeTimeout = 30 * time.Second

// inflightSem returns the admission-control semaphore, sized once from
// MaxInFlight on first use; nil when admission control is off.
func (s *Server) inflightSem() chan struct{} {
	s.inflightOnce.Do(func() {
		if s.MaxInFlight > 0 {
			s.inflight = make(chan struct{}, s.MaxInFlight)
		}
	})
	return s.inflight
}

// Shed reports how many requests admission control has rejected with 429.
func (s *Server) Shed() int64 { return s.shed.Load() }

// limit applies admission control (fast 429 shed past MaxInFlight), the
// concurrency bound, and request logging. Per-route write deadlines are
// applied by instrument() from the route registry.
func (s *Server) limit(next http.Handler) http.Handler {
	sem := s.semaphore()
	inflight := s.inflightSem()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if inflight != nil && r.URL.Path != "/healthz" {
			select {
			case inflight <- struct{}{}:
				defer func() { <-inflight }()
			default:
				// Shed instead of queueing: the client's retry (the
				// envelope is retryable) is cheaper than a convoy here.
				s.shed.Add(1)
				writeError(w, http.StatusTooManyRequests, "server at max in-flight requests")
				return
			}
		}
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable, "canceled while waiting for a concurrency slot")
			return
		}
		s.requests.Add(1)
		start := time.Now()
		next.ServeHTTP(w, r)
		if s.Log != nil {
			s.Log.Printf("%s %s %s", r.Method, r.URL.RequestURI(), time.Since(start))
		}
	})
}

// Start begins listening on addr (e.g. "127.0.0.1:8080"; ":0" picks a free
// port) and serves until Shutdown. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("webapi: listen %s: %w", addr, err)
	}
	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// No server-wide WriteTimeout: /api/harvest streams NDJSON for as
		// long as the batch runs. The limit middleware applies a per-
		// request write deadline to every other route, and the harvest
		// handler rolls its own deadline forward per emitted event.
		IdleTimeout: 60 * time.Second,
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && err != http.ErrServerClosed && s.Log != nil {
			s.Log.Printf("webapi: serve: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Shutdown cancels long-lived streaming handlers (in-flight batch
// harvests and job streams), drains the rest, stops the shared harvest
// scheduler, and stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	var err error
	if s.http != nil {
		err = s.http.Shutdown(ctx)
	}
	s.schedMu.Lock()
	sched := s.sched
	s.schedMu.Unlock()
	if sched != nil {
		// Every batch context descends from s.ctx, so the jobs are
		// already aborting; Close reaps the worker pools.
		sched.Close()
	}
	return err
}

// ServerMetrics is the GET /api/metrics payload: server-side counters
// mirroring what ClientMetrics reports client-side.
type ServerMetrics struct {
	// Requests counts every HTTP request served since start.
	Requests int64 `json:"requests"`
	// InFlight is the number of requests currently holding a concurrency
	// slot (the MaxConcurrent semaphore).
	InFlight int `json:"inFlight"`
	// Shed counts requests rejected 429 by admission control (MaxInFlight);
	// MaxInFlight echoes the configured bound (0 = admission control off).
	Shed        int64 `json:"shed"`
	MaxInFlight int   `json:"maxInFlight,omitempty"`
	// Runtime reports the process-health gauges (heap in use, GC pause
	// tail, goroutines, cumulative allocations) so a load driver can
	// correlate latency with GC and derive server-side allocs/request.
	Runtime RuntimeMetrics `json:"runtime"`
	// Jobs counts the async jobs registry by state.
	Jobs map[string]int `json:"jobs,omitempty"`
	// Scheduler snapshots the shared harvest scheduler (queue depth,
	// active/parked jobs, unspent adaptive budget); absent until the
	// first harvest request starts it.
	Scheduler *pipeline.Stats `json:"scheduler,omitempty"`
	// Cluster reports the coordinator's fan-out gauges (per-node in-flight,
	// hedges fired, partials served); present only on coordinator servers.
	Cluster *ClusterMetrics `json:"cluster,omitempty"`
	// Live reports the generational engine's ingest-side gauges (segment
	// count, memtable size, epoch, compaction totals, cache epoch-
	// invalidations); present only on live servers.
	Live *search.LiveMetrics `json:"live,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := ServerMetrics{
		Requests:    s.requests.Load(),
		InFlight:    len(s.semaphore()),
		Shed:        s.shed.Load(),
		MaxInFlight: s.MaxInFlight,
		Runtime:     readRuntimeMetrics(),
	}
	s.jobsMu.Lock()
	if len(s.jobs) > 0 {
		m.Jobs = make(map[string]int, 4)
		for _, j := range s.jobs {
			m.Jobs[j.stateName()]++
		}
	}
	s.jobsMu.Unlock()
	s.schedMu.Lock()
	sched := s.sched
	s.schedMu.Unlock()
	if sched != nil {
		st := sched.Stats()
		m.Scheduler = &st
	}
	if s.cluster != nil {
		cm := s.cluster.Metrics()
		m.Cluster = &cm
	}
	if s.Live != nil {
		lm := s.Live.Metrics()
		m.Live = &lm
	}
	writeJSON(w, m)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.cluster != nil {
		st := s.cluster.Stats()
		s.respond(w, r, wireStats, func(e *store.Enc) { encodeStatsWire(e, st) }, st)
		return
	}
	s.corpusMu.RLock()
	st := Stats{
		Domain:      string(s.corpus.Domain),
		NumEntities: s.corpus.NumEntities(),
		NumPages:    s.corpus.NumPages(),
	}
	s.corpusMu.RUnlock()
	if s.Live != nil {
		st.NumTerms = s.Live.NumTerms()
		st.TotalTokens = s.Live.TotalTokens()
		st.Mu = s.Live.Mu()
		st.TopK = s.Live.TopK()
	} else {
		idx := s.engine.Index()
		st.NumTerms = idx.NumTerms()
		st.TotalTokens = idx.TotalTokens()
		st.Mu = s.engine.Mu()
		st.TopK = s.engine.TopK()
	}
	s.respond(w, r, wireStats, func(e *store.Enc) { encodeStatsWire(e, st) }, st)
}

// queryParamTokens decodes one search-query parameter from a request. The
// legacy form is a single space-joined string (curl-friendly, and what
// pre-token-exact clients send); the token-exact form — signaled by
// tokq=1 — carries each token as its own repeated parameter value. The
// distinction matters because the tokenizer emits phrase tokens ("data
// mining" is ONE vocabulary term): a space split shatters those into
// out-of-vocabulary words and silently changes every Dirichlet score.
func queryParamTokens(qv url.Values, key string) []textproc.Token {
	if qv.Get("tokq") != "1" {
		if s := qv.Get(key); s != "" {
			return textproc.SplitQuery(s)
		}
		return nil
	}
	vals := qv[key]
	toks := make([]textproc.Token, 0, len(vals))
	for _, v := range vals {
		if v != "" {
			toks = append(toks, v)
		}
	}
	return toks
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	qToks := queryParamTokens(qv, "q")
	seedToks := queryParamTokens(qv, "seed")
	if len(qToks) == 0 && len(seedToks) == 0 {
		// A seed-only (or q-only) search is valid; only both-empty is not.
		writeError(w, http.StatusBadRequest, "missing query: provide q and/or seed")
		return
	}
	k := 0
	if kStr := qv.Get("k"); kStr != "" {
		var err error
		k, err = strconv.Atoi(kStr)
		if err != nil || k <= 0 || k > 100 {
			writeError(w, http.StatusBadRequest, "bad k parameter")
			return
		}
	}
	if s.cluster != nil {
		// Scatter-gather the cluster. A partial result (some partitions had
		// no live owner) is served flagged, not errored: the client sees
		// Partial and decides; only a total outage or a dead caller errors.
		resp, err := s.cluster.Scatter(r.Context(), seedToks, qToks, k)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		s.respond(w, r, wireSearch, func(e *store.Enc) { encodeSearchWire(e, resp) }, resp)
		return
	}
	var res []search.Result
	if s.Live != nil {
		// The per-request k rides through without deriving a new engine:
		// the live cache is epoch- and k-keyed.
		res = s.Live.SearchWithSeedTopKAppend(nil, k, seedToks, qToks)
	} else {
		engine := s.engine
		if k > 0 {
			engine = engine.WithTopK(k)
		}
		res = engine.SearchWithSeed(seedToks, qToks)
	}
	resp := SearchResponse{Query: textproc.JoinQuery(qToks), Seed: textproc.JoinQuery(seedToks), Hits: make([]SearchHit, 0, len(res))}
	for _, h := range res {
		resp.Hits = append(resp.Hits, SearchHit{
			PageID: h.Page.ID, URL: h.Page.URL, Title: h.Page.Title, Score: h.Score,
		})
	}
	s.respond(w, r, wireSearch, func(e *store.Enc) { encodeSearchWire(e, resp) }, resp)
}

func (s *Server) handleCollFreq(w http.ResponseWriter, r *http.Request) {
	tokens := r.URL.Query().Get("tokens")
	if tokens == "" {
		writeError(w, http.StatusBadRequest, "missing tokens parameter")
		return
	}
	toks := strings.Split(tokens, ",")
	if len(toks) > 10000 {
		writeError(w, http.StatusBadRequest, "too many tokens")
		return
	}
	if s.cluster != nil {
		// Answer from the aggregated global model — the statistics every
		// node scores with, so clients reproduce cluster scoring exactly.
		freqs := s.cluster.collFreqBatch(toks)
		s.respond(w, r, wireCollFreq, func(e *store.Enc) { encodeCollFreqWire(e, freqs) },
			map[string]map[string]int{"freqs": freqs})
		return
	}
	freqs := make(map[string]int, len(toks))
	if s.Live != nil {
		for _, t := range toks {
			freqs[t] = s.Live.CollectionFreq(t)
		}
	} else {
		idx := s.engine.Index()
		for _, t := range toks {
			freqs[t] = idx.CollectionFreq(t)
		}
	}
	s.respond(w, r, wireCollFreq, func(e *store.Enc) { encodeCollFreqWire(e, freqs) },
		map[string]map[string]int{"freqs": freqs})
}

func (s *Server) handleEntities(w http.ResponseWriter, r *http.Request) {
	if s.cluster != nil {
		out := s.cluster.Entities()
		s.respond(w, r, wireEntities, func(e *store.Enc) { encodeEntitiesWire(e, out) }, out)
		return
	}
	s.corpusMu.RLock()
	out := make([]EntityInfo, 0, s.corpus.NumEntities())
	for _, e := range s.corpus.Entities {
		out = append(out, EntityInfo{ID: e.ID, Name: e.Name, SeedQuery: e.SeedQuery})
	}
	s.corpusMu.RUnlock()
	s.respond(w, r, wireEntities, func(e *store.Enc) { encodeEntitiesWire(e, out) }, out)
}

// handlePage serves one corpus page at /page/{id} where {id} is
// "<n>.html" (the canonical html.PageHref form) or a bare numeric ID —
// as raw HTML by default, or as a wire frame carrying the identical
// bytes (gzipped past the threshold) when negotiated. Page bodies are
// the serving boundary's dominant transfer cost (one query fans out to
// top-K page downloads), which is why this is the payload the compress
// threshold is aimed at.
func (s *Server) handlePage(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	raw = strings.TrimSuffix(raw, ".html")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad page id")
		return
	}
	var p *corpus.Page
	if s.cluster != nil {
		// Proxy the page from its partition's owning node (replica failover
		// inside); rendering from the parsed page keeps the bytes identical
		// to what the node itself would serve.
		var err error
		p, err = s.cluster.PageCtx(r.Context(), corpus.PageID(id))
		if err != nil {
			writeError(w, errorStatus(err), err.Error())
			return
		}
	} else {
		s.corpusMu.RLock()
		var ok bool
		p, ok = s.pages[corpus.PageID(id)]
		s.corpusMu.RUnlock()
		if !ok {
			writeError(w, http.StatusNotFound, "no such page")
			return
		}
	}
	body := html.RenderPage(p)
	if s.wantsWire(r) {
		frame := marshalFrame(wirePage, s.compressMin(), func(e *store.Enc) { e.Raw([]byte(body)) })
		w.Header().Set("Content-Type", wireContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
		_, _ = w.Write(frame)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, body)
}
