package webapi

// The scatter-gather half of distributed retrieval (see cluster.go for
// the node half). A Coordinator fronts N l2qserve nodes as one logical
// search engine: each query fans out to every partition's owner chain
// over the negotiated wire codec, per-node deadlines bound the slowest
// link, a failed or late owner fails over to its replica (a hedge), and
// the per-partition top-K lists merge — partitions are disjoint, so no
// dedup — into the global ranking. The coordinator implements
// core.ContextRetriever, so harvesting sessions are distribution-
// oblivious: the same session code runs against an in-process engine, a
// single remote server, or a cluster.
//
// At dial time the coordinator aggregates every node's primary-partition
// collection statistics into the global model, derives the global μ with
// the engine's own AutoMu formula, and pushes the result back to every
// node — after which per-node scores are bit-identical to a single-node
// engine over the whole corpus, which the differential parity tests hold
// byte-for-byte.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/textproc"
)

// DefaultNodeDeadline bounds one per-node scatter attempt (search only;
// page transfers run under the caller's context, since a slow bulk link
// is not a node failure).
const DefaultNodeDeadline = 2 * time.Second

// ErrPartial is returned by the coordinator's retriever surface when a
// scatter lost partitions: core.ContextRetriever promises a complete
// ranked list or an error, never a silently shortened one. The HTTP
// serving surface instead serves the flagged partial (SearchResponse.
// Partial), where the client can see the flag and decide.
var ErrPartial = errors.New("cluster: partial result — one or more partitions had no live owner")

// CoordinatorConfig configures DialCoordinator.
type CoordinatorConfig struct {
	// Nodes are the node base URLs; index order IS ring node-ID order and
	// must match each node's -nodeid.
	Nodes []string
	// Replicas is the per-partition replication factor the nodes were
	// started with (default 2, clamped to [1, len(Nodes)]).
	Replicas int
	// NodeDeadline bounds one per-node scatter attempt before failing
	// over to the next replica (default DefaultNodeDeadline).
	NodeDeadline time.Duration
	// Client configures the per-node transports (retry policy, codec,
	// timeout, prefetch workers).
	Client ClientOptions
}

// nodePeer is the coordinator's view of one node: its client (retrying
// transport, page/collfreq caches, singleflight, metrics) plus the
// fan-out gauges the load harness calibrates against.
type nodePeer struct {
	base     string
	cli      *Client
	inFlight atomic.Int64
	hedges   atomic.Int64 // failover requests this node served for a downed peer
	errors   atomic.Int64 // scatter/page attempts against this node that failed
}

// Coordinator is the cluster's query front end. Create with
// DialCoordinator; safe for concurrent use.
type Coordinator struct {
	ring         *search.Ring
	peers        []*nodePeer
	nodeDeadline time.Duration
	prefetch     int

	global   GlobalStatsPayload
	stats    Stats
	entities []EntityInfo
	topK     int

	scatters atomic.Int64
	hedges   atomic.Int64
	partials atomic.Int64
}

// DialCoordinator dials every node, verifies the shared cluster geometry,
// aggregates the nodes' primary-partition statistics into the global
// collection model, and pushes that model back to every node. The ctx
// bounds the whole registration exchange.
func DialCoordinator(ctx context.Context, cfg CoordinatorConfig, tok *textproc.Tokenizer) (*Coordinator, error) {
	n := len(cfg.Nodes)
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	replicas := cfg.Replicas
	if replicas == 0 {
		replicas = 2
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > n {
		replicas = n
	}
	deadline := cfg.NodeDeadline
	if deadline <= 0 {
		deadline = DefaultNodeDeadline
	}
	co := &Coordinator{
		ring:         search.NewRing(n, replicas, 0),
		peers:        make([]*nodePeer, n),
		nodeDeadline: deadline,
		prefetch:     cfg.Client.withDefaults().PrefetchWorkers,
	}

	// Dial and collect each node's registration report in parallel.
	reports := make([]NodeStatsPayload, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, base := range cfg.Nodes {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			cli, err := DialContext(ctx, base, tok, cfg.Client)
			if err != nil {
				errs[i] = err
				return
			}
			st, err := cli.ClusterStats(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			if st.Nodes != n || st.Replicas != replicas || st.Node != i {
				errs[i] = fmt.Errorf("node %s reports geometry nodes=%d replicas=%d id=%d, want nodes=%d replicas=%d id=%d",
					base, st.Nodes, st.Replicas, st.Node, n, replicas, i)
				return
			}
			co.peers[i] = &nodePeer{base: base, cli: cli}
			reports[i] = st
		}(i, base)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("cluster: dial: %w", err)
	}

	// Aggregate the disjoint primary partitions into the global model.
	// Sums are exact because primaries cover the corpus without overlap.
	global := &search.CollectionStats{}
	topK := reports[0].TopK
	for i, st := range reports {
		if st.TopK != topK {
			return nil, fmt.Errorf("cluster: node %s serves top-%d, node %s top-%d — nodes must agree",
				cfg.Nodes[0], topK, cfg.Nodes[i], st.TopK)
		}
		search.MergeStats(global, &search.CollectionStats{
			CollFreq:    st.CollFreq,
			DocFreq:     st.DocFreq,
			TotalTokens: st.TotalTokens,
			NumDocs:     st.NumDocs,
		})
	}
	mu := search.AutoMu(global.NumDocs, global.TotalTokens)
	co.topK = topK
	co.global = GlobalStatsPayload{
		NumDocs:     global.NumDocs,
		TotalTokens: global.TotalTokens,
		NumTerms:    global.NumTerms,
		Mu:          mu,
		TopK:        topK,
		CollFreq:    global.CollFreq,
		DocFreq:     global.DocFreq,
	}

	// Push the global model to every node (idempotent; nodes answer
	// cluster searches 503 until this lands).
	pushErrs := make([]error, n)
	var pwg sync.WaitGroup
	for i := range co.peers {
		pwg.Add(1)
		go func(i int) {
			defer pwg.Done()
			pushErrs[i] = co.peers[i].cli.PushClusterStats(ctx, co.global)
		}(i)
	}
	pwg.Wait()
	if err := errors.Join(pushErrs...); err != nil {
		return nil, fmt.Errorf("cluster: stat push: %w", err)
	}

	// Harvest targets: any node has the full entity table (the corpus
	// store is shared; only the index is partitioned).
	var entErr error
	for _, peer := range co.peers {
		co.entities, entErr = peer.cli.Entities(ctx)
		if entErr == nil {
			break
		}
	}
	if entErr != nil {
		return nil, fmt.Errorf("cluster: entities: %w", entErr)
	}
	co.stats = Stats{
		Domain:      co.peers[0].cli.Stats().Domain,
		NumEntities: len(co.entities),
		NumPages:    global.NumDocs,
		NumTerms:    global.NumTerms,
		TotalTokens: global.TotalTokens,
		Mu:          mu,
		TopK:        topK,
	}
	return co, nil
}

// Stats returns the aggregated serving statistics — field-for-field what
// a single-node server over the whole corpus reports.
func (co *Coordinator) Stats() Stats { return co.stats }

// GlobalStats returns the distributed collection model (shared maps:
// treat as read-only).
func (co *Coordinator) GlobalStats() GlobalStatsPayload { return co.global }

// Nodes returns the cluster size.
func (co *Coordinator) Nodes() int { return co.ring.Nodes() }

// TopK implements core.Retriever.
func (co *Coordinator) TopK() int { return co.topK }

// scatterScratch is the pooled fan-out state of one Scatter call: the
// per-partition response slots, the miss mask, the owner-chain buffer,
// the RankedDoc conversion arena with its per-partition list headers, the
// merge output, and the doc→hit materialization map.
type scatterScratch struct {
	perPart [][]SearchHit
	missing []bool
	owners  []int
	lists   [][]search.RankedDoc
	ranked  []search.RankedDoc
	merged  []search.RankedDoc
	byDoc   map[int64]SearchHit
}

var scatterScratchPool = sync.Pool{New: func() any { return new(scatterScratch) }}

// releaseScatterScratch drops the references that alias response data
// (the decoded hit slices handed into resp) and hands the scratch back.
func releaseScatterScratch(sc *scatterScratch) {
	for i := range sc.perPart {
		sc.perPart[i] = nil
	}
	for i := range sc.lists {
		sc.lists[i] = nil
	}
	clear(sc.byDoc)
	scatterScratchPool.Put(sc)
}

// Scatter fans one seeded search out to every partition's owner chain and
// merges the per-partition top-k into the global ranking. A partition
// whose owners all fail (or time out past the per-node deadline) is
// dropped and the response is flagged Partial; the error is non-nil only
// when the caller's ctx ended or no partition answered at all.
func (co *Coordinator) Scatter(ctx context.Context, seed, query []textproc.Token, k int) (SearchResponse, error) {
	if k <= 0 {
		k = co.topK
	}
	n := co.ring.Nodes()
	nR := co.ring.Replicas()

	sc := scatterScratchPool.Get().(*scatterScratch)
	perPart := sc.perPart
	if cap(perPart) < n {
		perPart = make([][]SearchHit, n)
	}
	perPart = perPart[:n]
	missing := sc.missing
	if cap(missing) < n {
		missing = make([]bool, n)
	}
	missing = missing[:n]
	owners := sc.owners
	if cap(owners) < n*nR {
		owners = make([]int, n*nR)
	}
	owners = owners[:n*nR]
	if sc.byDoc == nil {
		sc.byDoc = make(map[int64]SearchHit, k*2)
	}
	sc.perPart, sc.missing, sc.owners = perPart, missing, owners

	var wg sync.WaitGroup
	for part := 0; part < n; part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			chain := owners[part*nR : part*nR : (part+1)*nR]
			hits, ok := co.searchPartition(ctx, part, seed, query, k, chain)
			perPart[part] = hits
			missing[part] = !ok
		}(part)
	}
	wg.Wait()

	total, missed := 0, 0
	for part := 0; part < n; part++ {
		if missing[part] {
			missed++
		} else {
			total += len(perPart[part])
		}
	}
	ranked := sc.ranked[:0]
	if cap(ranked) < total {
		ranked = make([]search.RankedDoc, 0, total)
	}
	lists := sc.lists[:0]
	for part := 0; part < n; part++ {
		if missing[part] {
			continue
		}
		start := len(ranked)
		for _, h := range perPart[part] {
			ranked = append(ranked, search.RankedDoc{Doc: int64(h.PageID), Score: h.Score})
			sc.byDoc[int64(h.PageID)] = h
		}
		lists = append(lists, ranked[start:len(ranked):len(ranked)])
	}
	merged := search.MergeTopKAppend(sc.merged[:0], k, lists)

	resp := SearchResponse{
		Query:   textproc.JoinQuery(query),
		Seed:    textproc.JoinQuery(seed),
		Partial: missed > 0,
		Hits:    make([]SearchHit, 0, len(merged)),
	}
	for _, rd := range merged {
		resp.Hits = append(resp.Hits, sc.byDoc[rd.Doc])
	}
	sc.ranked, sc.lists, sc.merged = ranked, lists, merged
	releaseScatterScratch(sc)

	co.scatters.Add(1)
	if err := ctx.Err(); err != nil {
		return SearchResponse{}, fmt.Errorf("cluster scatter: %w", err)
	}
	if missed == n {
		return SearchResponse{}, fmt.Errorf("cluster scatter: all %d partitions unavailable", n)
	}
	if missed > 0 {
		co.partials.Add(1)
	}
	return resp, nil
}

// searchPartition walks one partition's owner chain — primary first, then
// replicas — until an owner answers within the per-node deadline. Every
// post-primary success is a hedge (the failover the replicas exist for).
func (co *Coordinator) searchPartition(ctx context.Context, part int, seed, query []textproc.Token, k int, chain []int) ([]SearchHit, bool) {
	chain = co.ring.AppendOwners(chain, part)
	for oi, owner := range chain {
		if ctx.Err() != nil {
			return nil, false
		}
		peer := co.peers[owner]
		nctx, cancel := context.WithTimeout(ctx, co.nodeDeadline)
		peer.inFlight.Add(1)
		resp, err := peer.cli.ClusterSearch(nctx, part, seed, query, k)
		peer.inFlight.Add(-1)
		cancel()
		if err == nil {
			if oi > 0 {
				co.hedges.Add(1)
				peer.hedges.Add(1)
			}
			return resp.Hits, true
		}
		peer.errors.Add(1)
	}
	return nil, false
}

// SearchWithSeed implements core.Retriever (errorless adapter; see
// Client.SearchWithSeed for the contract).
func (co *Coordinator) SearchWithSeed(seed, query []textproc.Token) []search.Result {
	//l2qvet:ignore ctxbg errorless core.Retriever adapter: the interface has no ctx; error-aware callers use SearchWithSeedErr
	res, err := co.SearchWithSeedErr(context.Background(), seed, query)
	if err != nil {
		return nil
	}
	return res
}

// SearchWithSeedErr implements core.ContextRetriever: scatter the search,
// then download the global top-k pages from their owning nodes (replica
// failover per page). Either the complete ranked list is returned or an
// error — a flagged partial becomes ErrPartial here, because this surface
// has no flag channel and must never silently shorten a result list.
func (co *Coordinator) SearchWithSeedErr(ctx context.Context, seed, query []textproc.Token) ([]search.Result, error) {
	resp, err := co.Scatter(ctx, seed, query, co.topK)
	if err != nil {
		return nil, err
	}
	if resp.Partial {
		return nil, ErrPartial
	}
	pages, err := co.prefetchPages(ctx, resp.Hits)
	if err != nil {
		return nil, err
	}
	out := make([]search.Result, len(resp.Hits))
	for i, h := range resp.Hits {
		out[i] = search.Result{Page: pages[i], Score: h.Score}
	}
	return out, nil
}

// prefetchPages downloads the hit list with bounded concurrency,
// preserving rank order; the first failure cancels the rest (the
// complete-or-error contract).
func (co *Coordinator) prefetchPages(ctx context.Context, hits []SearchHit) ([]*corpus.Page, error) {
	pages := make([]*corpus.Page, len(hits))
	if len(hits) == 0 {
		return pages, nil
	}
	workers := co.prefetch
	if workers > len(hits) {
		workers = len(hits)
	}
	if workers <= 1 {
		for i, h := range hits {
			p, err := co.PageCtx(ctx, h.PageID)
			if err != nil {
				return nil, err
			}
			pages[i] = p
		}
		return pages, nil
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if fctx.Err() != nil {
					continue
				}
				p, err := co.PageCtx(fctx, hits[i].PageID)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel()
					continue
				}
				pages[i] = p
			}
		}()
	}
	for i := range hits {
		if fctx.Err() != nil {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return pages, nil
}

// PageCtx downloads one page from its partition's owner chain, failing
// over on error. Owners replicate whole partitions, so every owner serves
// an identical copy and reads balance freely: the chain is attempted in
// ascending in-flight order (least-loaded first, chain order breaking
// ties), which spreads a bulk prefetch across the replica set instead of
// hammering each partition's primary while its replicas idle. Runs under
// the caller's ctx, not the scatter deadline — a slow bulk transfer is
// not a node failure. Each node client's page cache and singleflight make
// repeated fetches free.
func (co *Coordinator) PageCtx(ctx context.Context, id corpus.PageID) (*corpus.Page, error) {
	var chainBuf [8]int
	chain := co.ring.AppendOwners(chainBuf[:0], co.ring.Partition(id))
	var loads [8]int64
	for i, owner := range chain {
		loads[i] = co.peers[owner].inFlight.Load()
	}
	for i := 1; i < len(chain); i++ {
		for j := i; j > 0 && loads[j] < loads[j-1]; j-- {
			loads[j], loads[j-1] = loads[j-1], loads[j]
			chain[j], chain[j-1] = chain[j-1], chain[j]
		}
	}
	var lastErr error
	for oi, owner := range chain {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		peer := co.peers[owner]
		peer.inFlight.Add(1)
		p, err := peer.cli.PageCtx(ctx, id)
		peer.inFlight.Add(-1)
		if err == nil {
			// oi > 0 means a preceding owner actually failed — a balanced
			// first-attempt read from a replica is not a hedge.
			if oi > 0 {
				co.hedges.Add(1)
				peer.hedges.Add(1)
			}
			return p, nil
		}
		peer.errors.Add(1)
		lastErr = err
	}
	return nil, lastErr
}

// QueryLikelihood implements core.Retriever with the single-node engine's
// exact scoring, computed locally from the aggregated global model — no
// network, no degradation.
func (co *Coordinator) QueryLikelihood(p *corpus.Page, query []textproc.Token) float64 {
	toks := p.Tokens()
	tf := make(map[textproc.Token]int, len(query))
	for _, t := range toks {
		tf[t]++
	}
	s := 0.0
	for _, t := range query {
		pC := search.CollectionProb(co.global.CollFreq[t], co.global.TotalTokens, co.global.NumTerms)
		s += search.DirichletTermScore(tf[t], len(toks), co.global.Mu, pC)
	}
	return s
}

// Entities returns the cluster's harvest targets (fetched at dial).
func (co *Coordinator) Entities() []EntityInfo { return co.entities }

// collFreqBatch answers a coordinator-side /collfreq from the global
// model — the values every node scores with.
func (co *Coordinator) collFreqBatch(tokens []string) map[string]int {
	out := make(map[string]int, len(tokens))
	for _, t := range tokens {
		out[t] = co.global.CollFreq[t]
	}
	return out
}

// ClusterNodeMetrics is one node's row in the fan-out gauges.
type ClusterNodeMetrics struct {
	Node string `json:"node"`
	// InFlight is the number of scatter attempts currently outstanding
	// against this node.
	InFlight int64 `json:"inFlight"`
	// Hedges counts failover requests this node served for a downed or
	// late peer.
	Hedges int64 `json:"hedges"`
	// Errors counts attempts against this node that failed terminally.
	Errors int64 `json:"errors"`
	// Client is the node transport's request/retry/error accounting.
	Client ClientMetrics `json:"client"`
}

// ClusterMetrics is the coordinator section of /api/v1/metrics: the
// fan-out gauges the load harness calibrates cluster saturation with.
type ClusterMetrics struct {
	Nodes    int   `json:"nodes"`
	Replicas int   `json:"replicas"`
	Scatters int64 `json:"scatters"`
	// Hedges counts scatter/page attempts that succeeded on a replica
	// after the primary failed or timed out.
	Hedges int64 `json:"hedges"`
	// Partials counts scatters served with one or more partitions missing.
	Partials int64                `json:"partials"`
	PerNode  []ClusterNodeMetrics `json:"perNode"`
}

// Metrics snapshots the fan-out gauges.
func (co *Coordinator) Metrics() ClusterMetrics {
	m := ClusterMetrics{
		Nodes:    co.ring.Nodes(),
		Replicas: co.ring.Replicas(),
		Scatters: co.scatters.Load(),
		Hedges:   co.hedges.Load(),
		Partials: co.partials.Load(),
		PerNode:  make([]ClusterNodeMetrics, len(co.peers)),
	}
	for i, peer := range co.peers {
		m.PerNode[i] = ClusterNodeMetrics{
			Node:     peer.base,
			InFlight: peer.inFlight.Load(),
			Hedges:   peer.hedges.Load(),
			Errors:   peer.errors.Load(),
			Client:   peer.cli.Metrics(),
		}
	}
	return m
}

// NewCoordinatorServer mounts a coordinator behind the standard serving
// surface: /api/v1/{stats,search,collfreq,entities,metrics} and /page/{id}
// answer from the cluster (searches scatter-gather, pages proxy to their
// owning node), with the same admission control, codec negotiation and
// error envelope as a single-node server. Harvest/jobs stay 501 unless a
// HarvestBackend is attached.
func NewCoordinatorServer(co *Coordinator) *Server {
	//l2qvet:ignore ctxbg server-lifetime root: this ctx outlives every request and is canceled by Shutdown's drain
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{cluster: co, MaxConcurrent: 64, ctx: ctx, cancel: cancel}
}

// errorStatus maps a coordinator failure to its serving-surface status:
// canceled requests and whole-cluster outages are retryable 503s; a page
// whose owners all 404 it stays a 404.
func errorStatus(err error) int {
	var te *TransportError
	if errors.As(err, &te) && te.Status == 404 {
		return 404
	}
	return 503
}

var _ = strings.TrimSpace // keep strings imported for the handlers below
