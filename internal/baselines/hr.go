package baselines

import (
	"fmt"
	"sort"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/template"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

// HRModel carries the domain statistics of the harvest-rate baseline [2]:
// raw counting estimates of how often a template's queries hit relevant
// pages, with no graph inference. Per §VI-C, HR is the only baseline that
// exploits domain data, and its per-query statistic is the average over the
// query's templates.
type HRModel struct {
	// TemplateHR maps template key → relevant-page fraction among the
	// domain pages containing any query the template abstracts.
	TemplateHR map[string]float64
	// Candidates are entity-frequent domain queries (same admission rule
	// as the L2Q domain model) so HR can propose unseen queries too.
	Candidates []core.Query
}

// TrainHR computes harvest-rate statistics over the domain entities'
// pages. y materializes relevance (classifier output), rec supplies types
// for template enumeration.
func TrainHR(cfg core.Config, c *corpus.Corpus, domainEntities []corpus.EntityID,
	y func(*corpus.Page) bool, rec types.Recognizer) (*HRModel, error) {

	var pages []*corpus.Page
	for _, id := range domainEntities {
		pages = append(pages, c.PagesOf(id)...)
	}
	if len(pages) == 0 {
		return nil, fmt.Errorf("baselines: HR training has no pages")
	}
	ngCfg := textproc.NGramConfig{MaxLen: cfg.MaxQueryLen, Stopwords: cfg.Stopwords}

	// Per-query page and relevant-page document frequencies, plus
	// entity frequencies for the candidate pool.
	pageDF := make(map[string]int)
	relDF := make(map[string]int)
	entityDF := make(map[string]int)
	lastEntity := make(map[string]corpus.EntityID)
	for _, p := range pages {
		rel := y(p)
		// The per-page memo (exclusion-free config) is shared with the
		// domain phase, which enumerates the same split's pages.
		for _, q := range p.NGrams(ngCfg) {
			pageDF[q]++
			if rel {
				relDF[q]++
			}
			if le, seen := lastEntity[q]; !seen || le != p.Entity {
				entityDF[q]++
				lastEntity[q] = p.Entity
			}
		}
	}

	// Micro-averaged harvest rate per template: Σ rel / Σ total over the
	// queries the template abstracts.
	type acc struct{ rel, tot int }
	tacc := make(map[string]*acc)
	for q, tot := range pageDF {
		if tot < cfg.MinQueryPageDF {
			continue
		}
		toks := cfg.QueryTokens(core.Query(q))
		for _, key := range template.EnumerateKeys(toks, rec) {
			a := tacc[key]
			if a == nil {
				a = &acc{}
				tacc[key] = a
			}
			a.rel += relDF[q]
			a.tot += tot
		}
	}
	m := &HRModel{TemplateHR: make(map[string]float64, len(tacc))}
	for key, a := range tacc {
		if a.tot > 0 {
			m.TemplateHR[key] = float64(a.rel) / float64(a.tot)
		}
	}

	// Candidate pool (same admission rule as core.LearnDomain).
	minEnt := int(cfg.MinDomainEntityFrac * float64(len(domainEntities)))
	if minEnt < 2 {
		minEnt = 2
	}
	type qc struct {
		q core.Query
		n int
	}
	var cands []qc
	for q, n := range entityDF {
		if n >= minEnt && pageDF[q] >= cfg.MinQueryPageDF {
			cands = append(cands, qc{q: core.Query(q), n: n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].q < cands[j].q
	})
	maxC := cfg.MaxDomainCandidates
	if maxC <= 0 {
		maxC = 300
	}
	if len(cands) > maxC {
		cands = cands[:maxC]
	}
	m.Candidates = make([]core.Query, len(cands))
	for i, c := range cands {
		m.Candidates[i] = c.q
	}
	return m, nil
}

// hrSelector blends the current results' harvest rate with the domain
// template statistic via pseudo-count smoothing:
//
//	score(q) = (rel_PE(q) + m·hr_D(q)) / (tot_PE(q) + m)
//
// where hr_D(q) averages TemplateHR over q's templates and m = 2.
type hrSelector struct {
	model *HRModel
}

// NewHR returns the harvest-rate baseline backed by a trained model.
func NewHR(model *HRModel) core.Selector { return hrSelector{model: model} }

func (hrSelector) Name() string { return "HR" }

const hrPseudoCount = 2.0

func (h hrSelector) Select(s *core.Session) (core.Selection, bool) {
	pages := s.Pages()
	cands := s.Candidates(false)
	seen := make(map[core.Query]struct{}, len(cands))
	for _, q := range cands {
		seen[q] = struct{}{}
	}
	fired := make(map[core.Query]struct{})
	for _, q := range s.Fired() {
		fired[q] = struct{}{}
	}
	for _, q := range h.model.Candidates {
		if _, dup := seen[q]; dup {
			continue
		}
		if _, done := fired[q]; done {
			continue
		}
		cands = append(cands, q)
	}
	if len(cands) == 0 {
		return core.Selection{}, false
	}

	best, bestScore := core.Query(""), -1.0
	for _, q := range cands {
		toks := s.Cfg.QueryTokens(q)
		rel, tot := 0, 0
		for _, p := range pages {
			if p.ContainsQuery(toks) {
				tot++
				if s.Y(p) {
					rel++
				}
			}
		}
		hrD := 0.0
		if s.Rec != nil {
			keys := template.EnumerateKeys(toks, s.Rec)
			n := 0
			for _, key := range keys {
				if v, ok := h.model.TemplateHR[key]; ok {
					hrD += v
					n++
				}
			}
			if n > 0 {
				hrD /= float64(n)
			}
		}
		score := (float64(rel) + hrPseudoCount*hrD) / (float64(tot) + hrPseudoCount)
		if score > bestScore || (score == bestScore && q < best) {
			best, bestScore = q, score
		}
	}
	if best == "" {
		return core.Selection{}, false
	}
	return core.Selection{Query: best}, true
}
