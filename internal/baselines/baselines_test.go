package baselines

import (
	"testing"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

type fixture struct {
	g      *synth.Generated
	engine *search.Engine
	rec    types.Recognizer
	y      func(*corpus.Page) bool
	cfg    core.Config
	domain []corpus.EntityID
	target *corpus.Entity
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	n := g.Corpus.NumEntities()
	var domain []corpus.EntityID
	for i := 0; i < n/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	aspect := synth.AspResearch
	return &fixture{
		g:      g,
		engine: search.NewEngine(search.BuildIndex(g.Corpus.Pages)),
		rec:    types.Chain{g.KB, types.NewRegexRecognizer()},
		y:      func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) },
		cfg:    cfg,
		domain: domain,
		target: g.Corpus.Entities[n-1],
	}
}

func (f *fixture) session() *core.Session {
	return core.NewSession(f.cfg, f.engine, f.target, synth.AspResearch, f.y, nil, f.rec, 7)
}

func TestLMSelectsFromRelevantPage(t *testing.T) {
	f := newFixture(t)
	s := f.session()
	fired := s.Run(NewLM(), 3)
	if len(fired) != 3 {
		t.Fatalf("LM fired %d queries", len(fired))
	}
	seen := map[core.Query]struct{}{}
	for _, q := range fired {
		if _, dup := seen[q]; dup {
			t.Fatalf("LM repeated query %q", q)
		}
		seen[q] = struct{}{}
	}
}

func TestAQPrefersRelevantDF(t *testing.T) {
	f := newFixture(t)
	s := f.session()
	s.Bootstrap()
	sel, ok := NewAQ().Select(s)
	if !ok {
		t.Fatal("AQ found nothing")
	}
	// The chosen query must occur in at least one relevant current page.
	toks := f.cfg.QueryTokens(sel.Query)
	found := false
	for _, p := range s.Pages() {
		if f.y(p) && p.ContainsQuery(toks) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("AQ chose %q, absent from all relevant pages", sel.Query)
	}
}

func TestAQRunsFullHarvest(t *testing.T) {
	f := newFixture(t)
	s := f.session()
	if fired := s.Run(NewAQ(), 3); len(fired) != 3 {
		t.Fatalf("AQ fired %d queries", len(fired))
	}
}

func TestHRTrainAndSelect(t *testing.T) {
	f := newFixture(t)
	model, err := TrainHR(f.cfg, f.g.Corpus, f.domain, f.y, f.rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.TemplateHR) == 0 {
		t.Fatal("HR learned no template statistics")
	}
	for key, v := range model.TemplateHR {
		if v < 0 || v > 1 {
			t.Fatalf("template %q harvest rate %f outside [0,1]", key, v)
		}
	}
	if len(model.Candidates) == 0 {
		t.Fatal("HR has no domain candidates")
	}
	s := f.session()
	if fired := s.Run(NewHR(model), 3); len(fired) != 3 {
		t.Fatalf("HR fired %d queries", len(fired))
	}
}

func TestHRTrainEmptyDomain(t *testing.T) {
	f := newFixture(t)
	if _, err := TrainHR(f.cfg, f.g.Corpus, nil, f.y, f.rec); err == nil {
		t.Fatal("empty domain accepted")
	}
}

func TestMQFiresCuratedInOrder(t *testing.T) {
	f := newFixture(t)
	s := f.session()
	want := ManualQueries(synth.DomainResearchers, synth.AspResearch)
	fired := s.Run(NewMQFor(synth.DomainResearchers, synth.AspResearch), 3)
	if len(fired) != 3 {
		t.Fatalf("MQ fired %d queries", len(fired))
	}
	for i := range fired {
		if fired[i] != want[i] {
			t.Fatalf("MQ order broke: fired %v, want prefix of %v", fired, want)
		}
	}
}

func TestMQExhausts(t *testing.T) {
	f := newFixture(t)
	s := f.session()
	fired := s.Run(NewMQFor(synth.DomainResearchers, synth.AspResearch), 10)
	if len(fired) != 5 {
		t.Fatalf("MQ fired %d queries, want exactly its 5 curated ones", len(fired))
	}
}

func TestManualQueriesCoverage(t *testing.T) {
	for _, d := range []corpus.Domain{synth.DomainResearchers, synth.DomainCars} {
		for _, a := range synth.TargetAspects(d) {
			qs := ManualQueries(d, a)
			if len(qs) != 5 {
				t.Errorf("%s/%s has %d manual queries, want 5", d, a, len(qs))
			}
		}
	}
	if ManualQueries("nope", "nope") != nil {
		t.Error("unknown domain should return nil")
	}
	if ManualQueries(synth.DomainCars, "NOPE") != nil {
		t.Error("unknown aspect should return nil")
	}
}

func TestBaselineNames(t *testing.T) {
	f := newFixture(t)
	model, err := TrainHR(f.cfg, f.g.Corpus, f.domain, f.y, f.rec)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]core.Selector{
		"LM": NewLM(),
		"AQ": NewAQ(),
		"HR": NewHR(model),
		"MQ": NewMQFor(synth.DomainResearchers, synth.AspResearch),
	}
	for want, sel := range names {
		if sel.Name() != want {
			t.Errorf("Name() = %q, want %q", sel.Name(), want)
		}
	}
}

func TestSortQueriesHelper(t *testing.T) {
	qs := sortQueries([]core.Query{"b", "a", "c"})
	if qs[0] != "a" || qs[2] != "c" {
		t.Fatalf("sortQueries = %v", qs)
	}
}
