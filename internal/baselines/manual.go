package baselines

import (
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/synth"
)

// manualQueries holds the curated five-query lists per (domain, aspect) —
// our stand-in for the paper's user study, where nine graduate students
// each provided five queries per domain and aspect with "generally good
// inter-user agreement" (§VI-C). The lists contain the generic aspect
// vocabulary a human would naturally try; like the paper's, they are
// domain-generic, not entity-specific.
var manualQueries = map[corpus.Domain]map[corpus.Aspect][]core.Query{
	synth.DomainResearchers: {
		synth.AspBiography:    {"biography", "born", "short biography", "career", "bio"},
		synth.AspPresentation: {"slides", "presentation", "talk", "keynote", "tutorial"},
		synth.AspAward:        {"award", "distinguished", "award won", "prize", "recipient"},
		synth.AspResearch:     {"research", "publications", "research interests", "papers", "projects"},
		synth.AspEducation:    {"education", "degree", "phd", "graduated", "thesis"},
		synth.AspEmployment:   {"employment", "worked", "position", "manager", "joined"},
		synth.AspContact:      {"contact", "email", "phone", "office", "address"},
	},
	synth.DomainCars: {
		synth.AspVerdict:     {"verdict", "rating", "review", "bottom line", "score"},
		synth.AspInterior:    {"interior", "cabin", "seats", "legroom", "comfort"},
		synth.AspExterior:    {"exterior", "styling", "wheels", "paint", "design"},
		synth.AspPrice:       {"price", "msrp", "cost", "invoice", "pricing"},
		synth.AspReliability: {"reliability", "warranty", "repairs", "durability", "complaints"},
		synth.AspSafety:      {"safety", "airbags", "crash test", "brakes", "stars"},
		synth.AspDriving:     {"driving", "handling", "acceleration", "engine", "ride"},
	},
}

// ManualQueries returns the curated query list for a (domain, aspect)
// pair, or nil if none is defined. The returned slice is a copy.
func ManualQueries(domain corpus.Domain, aspect corpus.Aspect) []core.Query {
	m, ok := manualQueries[domain]
	if !ok {
		return nil
	}
	qs, ok := m[aspect]
	if !ok {
		return nil
	}
	out := make([]core.Query, len(qs))
	copy(out, qs)
	return out
}
