// Package baselines implements the four comparison methods of §VI-C:
//
//   - LM: language-feedback-model query selection (Zhai & Lafferty [22]) —
//     the query with maximum likelihood under the most relevant current
//     page's language model.
//   - AQ: adaptive querying (Zerfos et al. [5]) — query statistics adaptive
//     to the current results, computed over relevant pages only (the
//     paper's adaptation, since the original lacks a notion of relevance).
//   - HR: harvest-rate heuristic (Wu et al. [2]) — query statistics from
//     current results and domain data, averaged over templates (the only
//     baseline that exploits domain data, as in the paper).
//   - MQ: manual querying — curated generic queries per (domain, aspect),
//     standing in for the paper's nine-graduate-student user study.
//
// All four implement core.Selector, so they plug into the same harvesting
// session as the L2Q strategies.
package baselines

import (
	"math"
	"sort"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// ---------------------------------------------------------------------------
// LM — language feedback model.
// ---------------------------------------------------------------------------

// lmSelector chooses the candidate with maximum likelihood under the
// unigram language model of the single most relevant current page (k = 1,
// which the paper found best on its corpora).
type lmSelector struct{}

// NewLM returns the LM baseline.
func NewLM() core.Selector { return lmSelector{} }

func (lmSelector) Name() string { return "LM" }

func (lmSelector) Select(s *core.Session) (core.Selection, bool) {
	pages := s.Pages()
	if len(pages) == 0 {
		return core.Selection{}, false
	}
	// Most relevant current page: first Y-relevant page in retrieval
	// order (earlier retrieval ≈ higher rank); fall back to the first.
	feedback := pages[0]
	for _, p := range pages {
		if s.Y(p) {
			feedback = p
			break
		}
	}
	// Unigram MLE of the feedback page with floor smoothing.
	toks := feedback.Tokens()
	if len(toks) == 0 {
		return core.Selection{}, false
	}
	tf := make(map[textproc.Token]float64, len(toks))
	for _, t := range toks {
		tf[t]++
	}
	n := float64(len(toks))
	logp := func(t textproc.Token) float64 {
		if c := tf[t]; c > 0 {
			return math.Log(c / n)
		}
		return math.Log(0.5 / n)
	}

	cands := s.Candidates(false) // current pages only; LM has no domain
	best, bestScore := core.Query(""), math.Inf(-1)
	for _, q := range cands {
		score := 0.0
		for _, t := range s.Cfg.QueryTokens(q) {
			score += logp(t)
		}
		if score > bestScore || (score == bestScore && q < best) {
			best, bestScore = q, score
		}
	}
	if best == "" {
		return core.Selection{}, false
	}
	return core.Selection{Query: best}, true
}

// ---------------------------------------------------------------------------
// AQ — adaptive querying.
// ---------------------------------------------------------------------------

// aqSelector scores each candidate by its document frequency among the
// *relevant* current result pages — statistics that adapt as results grow.
// No redundancy modeling and no domain data, matching [5] as adapted in
// §VI-C.
type aqSelector struct{}

// NewAQ returns the AQ baseline.
func NewAQ() core.Selector { return aqSelector{} }

func (aqSelector) Name() string { return "AQ" }

func (aqSelector) Select(s *core.Session) (core.Selection, bool) {
	pages := s.Pages()
	var relevant []*corpus.Page
	for _, p := range pages {
		if s.Y(p) {
			relevant = append(relevant, p)
		}
	}
	pool := relevant
	if len(pool) == 0 {
		pool = pages // degenerate start: no relevant pages yet
	}
	cands := s.Candidates(false)
	if len(cands) == 0 {
		return core.Selection{}, false
	}
	best, bestDF := core.Query(""), -1
	for _, q := range cands {
		toks := s.Cfg.QueryTokens(q)
		df := 0
		for _, p := range pool {
			if p.ContainsQuery(toks) {
				df++
			}
		}
		if df > bestDF || (df == bestDF && q < best) {
			best, bestDF = q, df
		}
	}
	if best == "" {
		return core.Selection{}, false
	}
	return core.Selection{Query: best}, true
}

// ---------------------------------------------------------------------------
// MQ — manual querying.
// ---------------------------------------------------------------------------

// mqSelector fires a fixed, human-curated query list in order.
type mqSelector struct {
	queries []core.Query
}

// NewMQ returns a manual-querying baseline over the given ordered list.
func NewMQ(queries []core.Query) core.Selector {
	return mqSelector{queries: queries}
}

// NewMQFor returns the MQ baseline with the built-in curated list for a
// (domain, aspect) pair; see ManualQueries.
func NewMQFor(domain corpus.Domain, aspect corpus.Aspect) core.Selector {
	return mqSelector{queries: ManualQueries(domain, aspect)}
}

func (mqSelector) Name() string { return "MQ" }

func (m mqSelector) Select(s *core.Session) (core.Selection, bool) {
	fired := make(map[core.Query]struct{}, len(s.Fired()))
	for _, q := range s.Fired() {
		fired[q] = struct{}{}
	}
	for _, q := range m.queries {
		if _, done := fired[q]; !done {
			return core.Selection{Query: q}, true
		}
	}
	return core.Selection{}, false
}

// sortQueries sorts a query slice in place and returns it (test helper
// used by HR training too).
func sortQueries(qs []core.Query) []core.Query {
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	return qs
}
