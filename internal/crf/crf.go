// Package crf implements a binary linear-chain conditional random field
// over paragraph sequences.
//
// The paper trains "one classifier for each Y based on conditional random
// fields, which can classify a paragraph as relevant to Y or not" (§VI-A
// "Entity aspects"). The chain structure matters for pages: paragraphs
// about the same aspect come in runs, so the label of a paragraph is
// informative about its neighbors — exactly what the transition weights of
// a linear-chain CRF capture and what independent per-paragraph classifiers
// (internal/classify's Naive Bayes) ignore.
//
// The model is standard: per-position state features (sparse, from the
// paragraph's tokens) and label-pair transition features, trained by
// maximizing the L2-regularized conditional log-likelihood with
// forward–backward gradients (train.go), decoded with Viterbi.
package crf

import "math"

// NumLabels is fixed: the relevance CRF is binary (0 = irrelevant,
// 1 = relevant), as in the paper.
const NumLabels = 2

// Label is a paragraph label: 0 or 1.
type Label uint8

// Model is a trained linear-chain CRF. Create with Train; the zero value
// is not usable. A Model is immutable and safe for concurrent use.
type Model struct {
	// state[l][f] is the weight of sparse feature f under label l.
	state [NumLabels][]float64
	// bias[l] is the per-label bias.
	bias [NumLabels]float64
	// trans[a][b] is the weight of transitioning from label a to b.
	trans [NumLabels][NumLabels]float64
	// start[l] is the weight of starting the sequence with label l.
	start [NumLabels]float64
	// numFeats is the size of the sparse feature space.
	numFeats int
}

// NumFeatures returns the size of the model's sparse feature space.
func (m *Model) NumFeatures() int { return m.numFeats }

// emission returns the unnormalized log-score of label l at a position
// with the given active features. Features out of range (unseen at
// training time) contribute nothing.
func (m *Model) emission(feats []int, l Label) float64 {
	s := m.bias[l]
	w := m.state[l]
	for _, f := range feats {
		if f >= 0 && f < m.numFeats {
			s += w[f]
		}
	}
	return s
}

// lattice precomputes the emission scores of a sequence: lat[i][l].
func (m *Model) lattice(seq [][]int) [][NumLabels]float64 {
	lat := make([][NumLabels]float64, len(seq))
	for i, feats := range seq {
		for l := Label(0); l < NumLabels; l++ {
			lat[i][l] = m.emission(feats, l)
		}
	}
	return lat
}

// Decode returns the Viterbi (maximum a posteriori) label sequence for the
// positions' active features. Empty input returns nil.
func (m *Model) Decode(seq [][]int) []Label {
	n := len(seq)
	if n == 0 {
		return nil
	}
	lat := m.lattice(seq)

	var delta [NumLabels]float64
	back := make([][NumLabels]Label, n)
	for l := Label(0); l < NumLabels; l++ {
		delta[l] = m.start[l] + lat[0][l]
	}
	for i := 1; i < n; i++ {
		var next [NumLabels]float64
		for b := Label(0); b < NumLabels; b++ {
			best, arg := math.Inf(-1), Label(0)
			for a := Label(0); a < NumLabels; a++ {
				if s := delta[a] + m.trans[a][b]; s > best {
					best, arg = s, a
				}
			}
			next[b] = best + lat[i][b]
			back[i][b] = arg
		}
		delta = next
	}
	out := make([]Label, n)
	bestL := Label(0)
	if delta[1] > delta[0] {
		bestL = 1
	}
	out[n-1] = bestL
	for i := n - 1; i > 0; i-- {
		bestL = back[i][bestL]
		out[i-1] = bestL
	}
	return out
}

// Marginals returns the posterior P(yᵢ = l | x) for every position, via
// forward–backward in log space. Rows sum to 1.
func (m *Model) Marginals(seq [][]int) [][NumLabels]float64 {
	n := len(seq)
	if n == 0 {
		return nil
	}
	lat := m.lattice(seq)
	fwd, bwd, logZ := m.forwardBackward(lat)
	out := make([][NumLabels]float64, n)
	for i := 0; i < n; i++ {
		for l := Label(0); l < NumLabels; l++ {
			out[i][l] = math.Exp(fwd[i][l] + bwd[i][l] - logZ)
		}
		// Renormalize against float drift.
		sum := out[i][0] + out[i][1]
		if sum > 0 {
			out[i][0] /= sum
			out[i][1] /= sum
		}
	}
	return out
}

// LogLikelihood returns log P(labels | seq) under the model.
func (m *Model) LogLikelihood(seq [][]int, labels []Label) float64 {
	if len(seq) != len(labels) || len(seq) == 0 {
		return math.Inf(-1)
	}
	lat := m.lattice(seq)
	score := m.start[labels[0]] + lat[0][labels[0]]
	for i := 1; i < len(seq); i++ {
		score += m.trans[labels[i-1]][labels[i]] + lat[i][labels[i]]
	}
	_, _, logZ := m.forwardBackward(lat)
	return score - logZ
}

// forwardBackward computes log-space forward and backward tables and the
// log partition function.
func (m *Model) forwardBackward(lat [][NumLabels]float64) (fwd, bwd [][NumLabels]float64, logZ float64) {
	n := len(lat)
	fwd = make([][NumLabels]float64, n)
	bwd = make([][NumLabels]float64, n)

	for l := Label(0); l < NumLabels; l++ {
		fwd[0][l] = m.start[l] + lat[0][l]
	}
	for i := 1; i < n; i++ {
		for b := Label(0); b < NumLabels; b++ {
			fwd[i][b] = logSumExp2(
				fwd[i-1][0]+m.trans[0][b],
				fwd[i-1][1]+m.trans[1][b],
			) + lat[i][b]
		}
	}

	for l := Label(0); l < NumLabels; l++ {
		bwd[n-1][l] = 0
	}
	for i := n - 2; i >= 0; i-- {
		for a := Label(0); a < NumLabels; a++ {
			bwd[i][a] = logSumExp2(
				m.trans[a][0]+lat[i+1][0]+bwd[i+1][0],
				m.trans[a][1]+lat[i+1][1]+bwd[i+1][1],
			)
		}
	}

	logZ = logSumExp2(fwd[n-1][0], fwd[n-1][1])
	return fwd, bwd, logZ
}

// logSumExp2 is log(eᵃ + eᵇ) computed stably.
func logSumExp2(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}
