package crf

// FeatureMap interns string feature names as dense IDs. Fit-time code
// calls ID to allocate; after Freeze, unknown names return -1 (the model
// ignores negative IDs at decode time, the standard treatment of
// unseen-at-training features).
type FeatureMap struct {
	ids    map[string]int
	frozen bool
}

// NewFeatureMap returns an empty, unfrozen feature map.
func NewFeatureMap() *FeatureMap {
	return &FeatureMap{ids: make(map[string]int, 1024)}
}

// ID returns the dense ID for a feature name, allocating a new one unless
// the map is frozen (then -1 for unknown names).
func (fm *FeatureMap) ID(name string) int {
	if id, ok := fm.ids[name]; ok {
		return id
	}
	if fm.frozen {
		return -1
	}
	id := len(fm.ids)
	fm.ids[name] = id
	return id
}

// Freeze stops allocation; subsequent unknown names map to -1.
func (fm *FeatureMap) Freeze() { fm.frozen = true }

// Len returns the number of allocated features.
func (fm *FeatureMap) Len() int { return len(fm.ids) }
