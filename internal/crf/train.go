package crf

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Example is one training sequence: per-position sparse features and gold
// labels (same length).
type Example struct {
	Feats  [][]int
	Labels []Label
}

// TrainConfig controls SGD training. The zero value is replaced by
// DefaultTrainConfig.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// LearnRate is the initial step size; it decays as 1/(1+t·Decay).
	LearnRate float64
	// Decay is the learning-rate decay per processed sequence.
	Decay float64
	// L2 is the regularization strength (per-dataset, not per-example).
	L2 float64
	// Seed drives the shuffling order.
	Seed uint64
}

// DefaultTrainConfig returns settings that converge on paragraph-labeling
// workloads within a few passes.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 8, LearnRate: 0.2, Decay: 1e-4, L2: 0.1, Seed: 1}
}

// Train fits a linear-chain CRF by stochastic gradient ascent on the
// L2-regularized conditional log-likelihood. numFeats is the size of the
// sparse feature space; every feature id in the examples must be in
// [0, numFeats). It returns an error on malformed input.
func Train(examples []Example, numFeats int, cfg TrainConfig) (*Model, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("crf: no training sequences")
	}
	if numFeats <= 0 {
		return nil, fmt.Errorf("crf: numFeats must be positive, got %d", numFeats)
	}
	for i, ex := range examples {
		if len(ex.Feats) == 0 || len(ex.Feats) != len(ex.Labels) {
			return nil, fmt.Errorf("crf: example %d has %d positions and %d labels",
				i, len(ex.Feats), len(ex.Labels))
		}
		for _, feats := range ex.Feats {
			for _, f := range feats {
				if f < 0 || f >= numFeats {
					return nil, fmt.Errorf("crf: example %d has feature %d outside [0,%d)", i, f, numFeats)
				}
			}
		}
		for _, l := range ex.Labels {
			if l >= NumLabels {
				return nil, fmt.Errorf("crf: example %d has label %d", i, l)
			}
		}
	}
	if cfg.Epochs <= 0 {
		cfg = DefaultTrainConfig()
	}

	m := &Model{numFeats: numFeats}
	for l := 0; l < NumLabels; l++ {
		m.state[l] = make([]float64, numFeats)
	}

	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xda3e39cb94b95bdb))
	l2PerStep := cfg.L2 / float64(len(examples))

	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ei := range order {
			eta := cfg.LearnRate / (1 + cfg.Decay*float64(t))
			m.sgdStep(&examples[ei], eta, l2PerStep)
			t++
		}
	}
	return m, nil
}

// sgdStep applies one gradient step for a single sequence: empirical
// feature counts minus model-expected counts (from forward–backward),
// minus the L2 pull toward zero.
func (m *Model) sgdStep(ex *Example, eta, l2 float64) {
	lat := m.lattice(ex.Feats)
	fwd, bwd, logZ := m.forwardBackward(lat)
	n := len(ex.Feats)

	// Position marginals q[i][l] = P(yᵢ=l | x).
	for i := 0; i < n; i++ {
		var q [NumLabels]float64
		for l := Label(0); l < NumLabels; l++ {
			q[l] = math.Exp(fwd[i][l] + bwd[i][l] - logZ)
		}
		for l := Label(0); l < NumLabels; l++ {
			// Gradient of emission terms: 1{yᵢ=l} − q[l].
			g := -q[l]
			if ex.Labels[i] == l {
				g += 1
			}
			if g == 0 {
				continue
			}
			step := eta * g
			m.bias[l] += step
			w := m.state[l]
			for _, f := range ex.Feats[i] {
				w[f] += step
			}
		}
	}

	// Start weights.
	for l := Label(0); l < NumLabels; l++ {
		g := -math.Exp(fwd[0][l] + bwd[0][l] - logZ)
		if ex.Labels[0] == l {
			g += 1
		}
		m.start[l] += eta * g
	}

	// Transition marginals P(yᵢ₋₁=a, yᵢ=b | x). The marginals must be
	// computed against the pre-step weights, so accumulate into a local
	// gradient and apply once.
	trans := m.trans
	var transGrad [NumLabels][NumLabels]float64
	for i := 1; i < n; i++ {
		for a := Label(0); a < NumLabels; a++ {
			for b := Label(0); b < NumLabels; b++ {
				p := math.Exp(fwd[i-1][a] + trans[a][b] + lat[i][b] + bwd[i][b] - logZ)
				g := -p
				if ex.Labels[i-1] == a && ex.Labels[i] == b {
					g += 1
				}
				transGrad[a][b] += g
			}
		}
	}
	for a := Label(0); a < NumLabels; a++ {
		for b := Label(0); b < NumLabels; b++ {
			m.trans[a][b] += eta * transGrad[a][b]
		}
	}

	// L2 shrinkage (dense part kept cheap: biases, start, transitions are
	// tiny; sparse weights shrink lazily only where touched this step —
	// an approximation that keeps steps O(active features)).
	if l2 > 0 {
		shrink := eta * l2
		for l := Label(0); l < NumLabels; l++ {
			m.bias[l] -= shrink * m.bias[l]
			m.start[l] -= shrink * m.start[l]
			for b := Label(0); b < NumLabels; b++ {
				m.trans[l][b] -= shrink * m.trans[l][b]
			}
			w := m.state[l]
			for i := 0; i < n; i++ {
				for _, f := range ex.Feats[i] {
					w[f] -= shrink * w[f]
				}
			}
		}
	}
}

// RegularizedLogLikelihood returns the training objective over a dataset:
// Σ log P(y|x) − (λ/2)‖w‖². Exposed for tests and convergence monitoring.
func (m *Model) RegularizedLogLikelihood(examples []Example, l2 float64) float64 {
	ll := 0.0
	for i := range examples {
		ll += m.LogLikelihood(examples[i].Feats, examples[i].Labels)
	}
	norm := 0.0
	for l := 0; l < NumLabels; l++ {
		norm += m.bias[l]*m.bias[l] + m.start[l]*m.start[l]
		for b := 0; b < NumLabels; b++ {
			norm += m.trans[l][b] * m.trans[l][b]
		}
		for _, w := range m.state[l] {
			norm += w * w
		}
	}
	return ll - l2/2*norm
}
