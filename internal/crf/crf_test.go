package crf

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randModel builds a model with small random weights for inference tests.
func randModel(numFeats int, rng *rand.Rand) *Model {
	m := &Model{numFeats: numFeats}
	for l := 0; l < NumLabels; l++ {
		m.state[l] = make([]float64, numFeats)
		for f := range m.state[l] {
			m.state[l][f] = rng.NormFloat64()
		}
		m.bias[l] = rng.NormFloat64()
		m.start[l] = rng.NormFloat64()
		for b := 0; b < NumLabels; b++ {
			m.trans[l][b] = rng.NormFloat64()
		}
	}
	return m
}

// randSeq builds a random sequence of feature sets.
func randSeq(n, numFeats int, rng *rand.Rand) [][]int {
	seq := make([][]int, n)
	for i := range seq {
		k := rng.IntN(4)
		for j := 0; j < k; j++ {
			seq[i] = append(seq[i], rng.IntN(numFeats))
		}
	}
	return seq
}

// seqScore is the unnormalized log-score of one labeling (brute-force
// reference implementation).
func seqScore(m *Model, seq [][]int, labels []Label) float64 {
	s := m.start[labels[0]] + m.emission(seq[0], labels[0])
	for i := 1; i < len(seq); i++ {
		s += m.trans[labels[i-1]][labels[i]] + m.emission(seq[i], labels[i])
	}
	return s
}

// enumerate calls fn for every possible labeling of length n.
func enumerate(n int, fn func([]Label)) {
	labels := make([]Label, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			fn(labels)
			return
		}
		for l := Label(0); l < NumLabels; l++ {
			labels[i] = l
			rec(i + 1)
		}
	}
	rec(0)
}

// TestPartitionMatchesBruteForce checks that forward–backward's logZ equals
// the brute-force sum over all 2ⁿ labelings.
func TestPartitionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(6)
		m := randModel(5, rng)
		seq := randSeq(n, 5, rng)

		brute := math.Inf(-1)
		enumerate(n, func(labels []Label) {
			brute = logSumExp2(brute, seqScore(m, seq, labels))
		})
		_, _, logZ := m.forwardBackward(m.lattice(seq))
		if math.Abs(brute-logZ) > 1e-9 {
			t.Fatalf("trial %d: logZ = %v, brute force = %v", trial, logZ, brute)
		}
	}
}

// TestViterbiMatchesBruteForce checks Decode against exhaustive argmax.
func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(6)
		m := randModel(4, rng)
		seq := randSeq(n, 4, rng)

		bestScore := math.Inf(-1)
		enumerate(n, func(labels []Label) {
			if s := seqScore(m, seq, labels); s > bestScore {
				bestScore = s
			}
		})
		got := m.Decode(seq)
		if s := seqScore(m, seq, got); math.Abs(s-bestScore) > 1e-9 {
			t.Fatalf("trial %d: viterbi score %v, best %v", trial, s, bestScore)
		}
	}
}

// TestMarginalsSumToOne checks posterior normalization and brute-force
// agreement.
func TestMarginalsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	n := 5
	m := randModel(4, rng)
	seq := randSeq(n, 4, rng)

	// Brute-force marginals.
	var logZ float64 = math.Inf(-1)
	enumerate(n, func(labels []Label) {
		logZ = logSumExp2(logZ, seqScore(m, seq, labels))
	})
	brute := make([][NumLabels]float64, n)
	enumerate(n, func(labels []Label) {
		p := math.Exp(seqScore(m, seq, labels) - logZ)
		for i, l := range labels {
			brute[i][l] += p
		}
	})

	got := m.Marginals(seq)
	for i := 0; i < n; i++ {
		if s := got[i][0] + got[i][1]; math.Abs(s-1) > 1e-9 {
			t.Errorf("position %d marginals sum to %v", i, s)
		}
		for l := 0; l < NumLabels; l++ {
			if math.Abs(got[i][l]-brute[i][l]) > 1e-9 {
				t.Errorf("position %d label %d: %v vs brute %v", i, l, got[i][l], brute[i][l])
			}
		}
	}
}

// TestGradientCheck compares the analytic SGD gradient against finite
// differences of the log-likelihood on a tiny problem — the canonical CRF
// correctness test.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	const numFeats = 3
	m := randModel(numFeats, rng)
	ex := Example{
		Feats:  [][]int{{0, 1}, {2}, {1}},
		Labels: []Label{1, 0, 1},
	}

	// Analytic gradient via a single SGD step with eta=1, l2=0 applied to
	// a copy: weight delta == gradient.
	grad := cloneModel(m)
	grad.sgdStep(&ex, 1.0, 0)

	const h = 1e-6
	checkOne := func(name string, get func(*Model) *float64) {
		plus, minus := cloneModel(m), cloneModel(m)
		*get(plus) += h
		*get(minus) -= h
		numeric := (plus.LogLikelihood(ex.Feats, ex.Labels) -
			minus.LogLikelihood(ex.Feats, ex.Labels)) / (2 * h)
		analytic := *get(grad) - *get(m)
		if math.Abs(numeric-analytic) > 1e-4 {
			t.Errorf("%s: numeric %v, analytic %v", name, numeric, analytic)
		}
	}

	for l := Label(0); l < NumLabels; l++ {
		l := l
		for f := 0; f < numFeats; f++ {
			f := f
			checkOne("state", func(m *Model) *float64 { return &m.state[l][f] })
		}
		checkOne("bias", func(m *Model) *float64 { return &m.bias[l] })
		checkOne("start", func(m *Model) *float64 { return &m.start[l] })
		for b := Label(0); b < NumLabels; b++ {
			b := b
			checkOne("trans", func(m *Model) *float64 { return &m.trans[l][b] })
		}
	}
}

func cloneModel(m *Model) *Model {
	cp := &Model{numFeats: m.numFeats, bias: m.bias, trans: m.trans, start: m.start}
	for l := 0; l < NumLabels; l++ {
		cp.state[l] = append([]float64(nil), m.state[l]...)
	}
	return cp
}

// TestTrainSeparableData checks that training learns a separable toy task:
// feature 0 marks label 1, feature 1 marks label 0.
func TestTrainSeparableData(t *testing.T) {
	var examples []Example
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 50; i++ {
		n := 2 + rng.IntN(5)
		ex := Example{Feats: make([][]int, n), Labels: make([]Label, n)}
		for j := 0; j < n; j++ {
			if rng.IntN(2) == 0 {
				ex.Feats[j] = []int{0}
				ex.Labels[j] = 1
			} else {
				ex.Feats[j] = []int{1}
				ex.Labels[j] = 0
			}
		}
		examples = append(examples, ex)
	}
	m, err := Train(examples, 2, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, ex := range examples {
		got := m.Decode(ex.Feats)
		for i := range got {
			if got[i] == ex.Labels[i] {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.99 {
		t.Fatalf("accuracy %v on separable data", acc)
	}
}

// TestTrainLearnsTransitions checks that the chain structure is used: with
// uninformative emissions, sticky label runs must be learned from
// transitions alone.
func TestTrainLearnsTransitions(t *testing.T) {
	// All positions share feature 0; labels come in long runs.
	var examples []Example
	for i := 0; i < 40; i++ {
		ex := Example{}
		l := Label(i % 2)
		for j := 0; j < 8; j++ {
			ex.Feats = append(ex.Feats, []int{0})
			ex.Labels = append(ex.Labels, l)
		}
		examples = append(examples, ex)
	}
	m, err := Train(examples, 1, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Staying must beat switching for both labels.
	if m.trans[0][0] <= m.trans[0][1] {
		t.Errorf("trans[0][0]=%v not > trans[0][1]=%v", m.trans[0][0], m.trans[0][1])
	}
	if m.trans[1][1] <= m.trans[1][0] {
		t.Errorf("trans[1][1]=%v not > trans[1][0]=%v", m.trans[1][1], m.trans[1][0])
	}
}

// TestTrainImprovesObjective checks SGD actually ascends the regularized
// log-likelihood relative to the zero model.
func TestTrainImprovesObjective(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	var examples []Example
	for i := 0; i < 30; i++ {
		n := 3 + rng.IntN(4)
		ex := Example{Feats: make([][]int, n), Labels: make([]Label, n)}
		for j := 0; j < n; j++ {
			f := rng.IntN(6)
			ex.Feats[j] = []int{f}
			if f < 3 {
				ex.Labels[j] = 1
			}
		}
		examples = append(examples, ex)
	}
	zero := &Model{numFeats: 6}
	for l := 0; l < NumLabels; l++ {
		zero.state[l] = make([]float64, 6)
	}
	trained, err := Train(examples, 6, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	const l2 = 0.1
	if trained.RegularizedLogLikelihood(examples, l2) <= zero.RegularizedLogLikelihood(examples, l2) {
		t.Fatal("training did not improve the objective")
	}
}

func TestTrainValidation(t *testing.T) {
	good := Example{Feats: [][]int{{0}}, Labels: []Label{1}}
	cases := []struct {
		name     string
		examples []Example
		numFeats int
	}{
		{"empty", nil, 1},
		{"zero feats", []Example{good}, 0},
		{"length mismatch", []Example{{Feats: [][]int{{0}}, Labels: []Label{0, 1}}}, 1},
		{"empty sequence", []Example{{}}, 1},
		{"feature out of range", []Example{{Feats: [][]int{{5}}, Labels: []Label{0}}}, 1},
		{"bad label", []Example{{Feats: [][]int{{0}}, Labels: []Label{7}}}, 1},
	}
	for _, tc := range cases {
		if _, err := Train(tc.examples, tc.numFeats, DefaultTrainConfig()); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	m := &Model{numFeats: 1}
	for l := 0; l < NumLabels; l++ {
		m.state[l] = make([]float64, 1)
	}
	if got := m.Decode(nil); got != nil {
		t.Errorf("Decode(nil) = %v", got)
	}
	if got := m.Marginals(nil); got != nil {
		t.Errorf("Marginals(nil) = %v", got)
	}
	if ll := m.LogLikelihood(nil, nil); !math.IsInf(ll, -1) {
		t.Errorf("LogLikelihood(empty) = %v", ll)
	}
}

func TestLogSumExp2(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 500 || math.Abs(b) > 500 {
			return true
		}
		got := logSumExp2(a, b)
		want := math.Log(math.Exp(a) + math.Exp(b))
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := logSumExp2(math.Inf(-1), math.Inf(-1)); !math.IsInf(got, -1) {
		t.Errorf("logSumExp2(-inf,-inf) = %v", got)
	}
	if got := logSumExp2(0, math.Inf(-1)); got != 0 {
		t.Errorf("logSumExp2(0,-inf) = %v", got)
	}
}

func TestFeatureMap(t *testing.T) {
	fm := NewFeatureMap()
	a := fm.ID("a")
	b := fm.ID("b")
	if a == b {
		t.Fatal("distinct names shared an id")
	}
	if got := fm.ID("a"); got != a {
		t.Fatal("id not stable")
	}
	if fm.Len() != 2 {
		t.Fatalf("Len = %d", fm.Len())
	}
	fm.Freeze()
	if got := fm.ID("new"); got != -1 {
		t.Fatalf("frozen map allocated %d", got)
	}
	if got := fm.ID("b"); got != b {
		t.Fatal("frozen lookup broken")
	}
}
