package textproc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NGramConfig controls candidate-query enumeration from token streams.
type NGramConfig struct {
	// MaxLen is the maximum query length L (paper uses L=3, §VI-A).
	MaxLen int
	// Stopwords, when non-nil, suppresses n-grams that consist solely of
	// stopwords and n-grams that start or end with a stopword (interior
	// stopwords are allowed: "university of illinois").
	Stopwords *Stopwords
	// Exclude drops any n-gram containing one of these tokens (used to
	// remove the seed-query tokens: the seed is appended to every query
	// anyway, so repeating its words adds no signal).
	Exclude map[Token]struct{}
}

// DefaultNGramConfig returns the paper's enumeration settings: L = 3 with
// the default stopword list.
func DefaultNGramConfig() NGramConfig {
	return NGramConfig{MaxLen: 3, Stopwords: NewStopwords()}
}

// NGrams enumerates the distinct candidate queries from a token sequence by
// sliding a window of ℓ ∈ {1..MaxLen} words (paper §VI-A). The result is
// deduplicated, in first-appearance order, each rendered with JoinQuery.
func NGrams(tokens []Token, cfg NGramConfig) []string {
	return AppendNGrams(nil, tokens, cfg)
}

// ngramScratch is the pooled working state of one AppendNGrams pass: the
// dedup set (cleared, but kept at capacity, between uses) and the byte
// buffer grams are joined into so the set probe never allocates.
type ngramScratch struct {
	seen map[string]struct{}
	join []byte
}

var ngramScratchPool = sync.Pool{New: func() any {
	return &ngramScratch{seen: make(map[string]struct{}, 256)}
}}

// AppendNGrams is NGrams with a caller-provided buffer: distinct
// admissible grams are appended to dst in first-appearance order. The
// dedup set and the join buffer come from a pool and every dedup probe is
// an allocation-free map lookup on the join buffer, so the only
// allocations are the emitted multi-word gram strings themselves
// (single-word grams reuse the token string) plus any dst growth.
func AppendNGrams(dst []string, tokens []Token, cfg NGramConfig) []string {
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 3
	}
	sc := ngramScratchPool.Get().(*ngramScratch)
	seen, join := sc.seen, sc.join
	for l := 1; l <= cfg.MaxLen; l++ {
		for i := 0; i+l <= len(tokens); i++ {
			gram := tokens[i : i+l]
			if !admissible(gram, cfg) {
				continue
			}
			var q string
			if l == 1 {
				// A 1-gram IS its token; no join, no copy.
				q = string(gram[0])
				if _, dup := seen[q]; dup {
					continue
				}
			} else {
				join = join[:0]
				for j, t := range gram {
					if j > 0 {
						join = append(join, ' ')
					}
					join = append(join, t...)
				}
				if _, dup := seen[string(join)]; dup {
					continue
				}
				q = string(join)
			}
			seen[q] = struct{}{}
			dst = append(dst, q)
		}
	}
	clear(sc.seen)
	sc.join = join
	ngramScratchPool.Put(sc)
	return dst
}

// CountNGrams tallies n-gram occurrence counts over a token sequence into
// counts (allocated by the caller), applying the same admissibility rules as
// NGrams. It returns counts to allow chaining.
func CountNGrams(tokens []Token, cfg NGramConfig, counts map[string]int) map[string]int {
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 3
	}
	if counts == nil {
		counts = make(map[string]int)
	}
	for l := 1; l <= cfg.MaxLen; l++ {
		for i := 0; i+l <= len(tokens); i++ {
			gram := tokens[i : i+l]
			if !admissible(gram, cfg) {
				continue
			}
			counts[JoinQuery(gram)]++
		}
	}
	return counts
}

// memoKey derives a stable identity for enumeration results produced
// under this config. Stopword lists are keyed by pointer identity (they
// are shared, immutable objects within one system); the exclude set is
// keyed by its sorted contents so two configs excluding the same seed
// tokens share cache entries regardless of map construction order.
func (cfg NGramConfig) memoKey() string {
	maxLen := cfg.MaxLen
	if maxLen <= 0 {
		maxLen = 3
	}
	var ex []string
	for t := range cfg.Exclude {
		ex = append(ex, string(t))
	}
	sort.Strings(ex)
	return fmt.Sprintf("%d|%p|%s", maxLen, cfg.Stopwords, strings.Join(ex, "\x00"))
}

// maxMemoEntries bounds the distinct configs one NGramMemo caches.
// Distinct entries arise from distinct seed-exclusion sets (one per
// entity harvesting the page); past the bound, exclusion-carrying
// enumerations are computed without caching so a page touched by many
// entities cannot grow without bound. The exclusion-free config (shared
// by domain learning, coverage and the baselines) is exempt from the
// cap, so a burst of entity sessions can never lock it out.
const maxMemoEntries = 16

// NGramMemo memoizes NGrams enumerations of ONE immutable token stream,
// keyed by the enumeration config. Pages are immutable once ingested, so
// candidate generation, domain learning and §V coverage can share a
// single enumeration instead of re-sliding the n-gram window on every
// step. Safe for concurrent use; the zero value is ready.
//
// Callers must treat the returned slice as read-only — it is shared by
// every caller with the same config.
type NGramMemo struct {
	mu    sync.Mutex
	byCfg map[string]memoEntry
}

// memoEntry retains the stopword list a cached enumeration was computed
// under: the cache key carries only its formatted address, so without
// the retained pointer a collected list whose address is reused by a
// later allocation could produce a stale false hit. Holding the pointer
// both keeps the list alive and lets lookups verify identity.
type memoEntry struct {
	sw  *Stopwords
	out []string
}

// NGrams returns NGrams(tokens, cfg), computing it at most once per
// config. tokens must be the same immutable stream on every call (the
// owning page's token cache).
func (m *NGramMemo) NGrams(tokens []Token, cfg NGramConfig) []string {
	key := cfg.memoKey()
	m.mu.Lock()
	if e, ok := m.byCfg[key]; ok && e.sw == cfg.Stopwords {
		m.mu.Unlock()
		return e.out
	}
	m.mu.Unlock()
	out := NGrams(tokens, cfg)
	if out == nil {
		out = []string{} // distinguish "computed, empty" from "absent"
	}
	m.mu.Lock()
	if m.byCfg == nil {
		m.byCfg = make(map[string]memoEntry)
	}
	if e, ok := m.byCfg[key]; ok && e.sw == cfg.Stopwords {
		out = e.out // another goroutine computed it first; share theirs
	} else if ok || len(m.byCfg) < maxMemoEntries || len(cfg.Exclude) == 0 {
		// Overwrite a same-key entry whose stopword list died (its
		// address was reused), or fill a free slot. The exclusion-free
		// config bypasses the cap: it is the one shared by domain
		// learning and the baselines, and many distinct per-entity seed
		// exclusions must not be able to lock it out.
		m.byCfg[key] = memoEntry{sw: cfg.Stopwords, out: out}
	}
	m.mu.Unlock()
	return out
}

func admissible(gram []Token, cfg NGramConfig) bool {
	if len(gram) == 0 {
		return false
	}
	if cfg.Exclude != nil {
		for _, t := range gram {
			if _, bad := cfg.Exclude[t]; bad {
				return false
			}
		}
	}
	if sw := cfg.Stopwords; sw != nil {
		if sw.Contains(gram[0]) || sw.Contains(gram[len(gram)-1]) {
			return false
		}
	}
	return true
}

// ContainsSubsequence reports whether the query tokens appear in the page
// tokens as a contiguous subsequence. This is the containment test behind
// reinforcement-graph edges between pages and the queries they contain.
func ContainsSubsequence(page, query []Token) bool {
	if len(query) == 0 || len(query) > len(page) {
		return false
	}
outer:
	for i := 0; i+len(query) <= len(page); i++ {
		for j := range query {
			if page[i+j] != query[j] {
				continue outer
			}
		}
		return true
	}
	return false
}
