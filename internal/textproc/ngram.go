package textproc

// NGramConfig controls candidate-query enumeration from token streams.
type NGramConfig struct {
	// MaxLen is the maximum query length L (paper uses L=3, §VI-A).
	MaxLen int
	// Stopwords, when non-nil, suppresses n-grams that consist solely of
	// stopwords and n-grams that start or end with a stopword (interior
	// stopwords are allowed: "university of illinois").
	Stopwords *Stopwords
	// Exclude drops any n-gram containing one of these tokens (used to
	// remove the seed-query tokens: the seed is appended to every query
	// anyway, so repeating its words adds no signal).
	Exclude map[Token]struct{}
}

// DefaultNGramConfig returns the paper's enumeration settings: L = 3 with
// the default stopword list.
func DefaultNGramConfig() NGramConfig {
	return NGramConfig{MaxLen: 3, Stopwords: NewStopwords()}
}

// NGrams enumerates the distinct candidate queries from a token sequence by
// sliding a window of ℓ ∈ {1..MaxLen} words (paper §VI-A). The result is
// deduplicated, in first-appearance order, each rendered with JoinQuery.
func NGrams(tokens []Token, cfg NGramConfig) []string {
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 3
	}
	seen := make(map[string]struct{})
	var out []string
	for l := 1; l <= cfg.MaxLen; l++ {
		for i := 0; i+l <= len(tokens); i++ {
			gram := tokens[i : i+l]
			if !admissible(gram, cfg) {
				continue
			}
			q := JoinQuery(gram)
			if _, dup := seen[q]; dup {
				continue
			}
			seen[q] = struct{}{}
			out = append(out, q)
		}
	}
	return out
}

// CountNGrams tallies n-gram occurrence counts over a token sequence into
// counts (allocated by the caller), applying the same admissibility rules as
// NGrams. It returns counts to allow chaining.
func CountNGrams(tokens []Token, cfg NGramConfig, counts map[string]int) map[string]int {
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 3
	}
	if counts == nil {
		counts = make(map[string]int)
	}
	for l := 1; l <= cfg.MaxLen; l++ {
		for i := 0; i+l <= len(tokens); i++ {
			gram := tokens[i : i+l]
			if !admissible(gram, cfg) {
				continue
			}
			counts[JoinQuery(gram)]++
		}
	}
	return counts
}

func admissible(gram []Token, cfg NGramConfig) bool {
	if len(gram) == 0 {
		return false
	}
	if cfg.Exclude != nil {
		for _, t := range gram {
			if _, bad := cfg.Exclude[t]; bad {
				return false
			}
		}
	}
	if sw := cfg.Stopwords; sw != nil {
		if sw.Contains(gram[0]) || sw.Contains(gram[len(gram)-1]) {
			return false
		}
	}
	return true
}

// ContainsSubsequence reports whether the query tokens appear in the page
// tokens as a contiguous subsequence. This is the containment test behind
// reinforcement-graph edges between pages and the queries they contain.
func ContainsSubsequence(page, query []Token) bool {
	if len(query) == 0 || len(query) > len(page) {
		return false
	}
outer:
	for i := 0; i+len(query) <= len(page); i++ {
		for j := range query {
			if page[i+j] != query[j] {
				continue outer
			}
		}
		return true
	}
	return false
}
