package textproc

// Stopwords is a set of function words excluded from candidate queries.
// Queries made only of stopwords carry no retrieval signal, and leading /
// trailing stopwords in an n-gram rarely help (the paper enumerates raw
// n-grams but its corpus pipeline normalizes text; we expose the set so
// callers can choose).
type Stopwords struct {
	set map[string]struct{}
}

// defaultStopwords is a compact English function-word list adequate for the
// synthetic corpora; it is not meant to be exhaustive.
var defaultStopwords = []string{
	"a", "an", "the", "and", "or", "but", "if", "then", "else", "when",
	"at", "by", "for", "with", "about", "against", "between", "into",
	"through", "during", "before", "after", "above", "below", "to", "from",
	"up", "down", "in", "out", "on", "off", "over", "under", "again",
	"further", "once", "here", "there", "all", "any", "both", "each", "few",
	"more", "most", "other", "some", "such", "no", "nor", "not", "only",
	"own", "same", "so", "than", "too", "very", "can", "will", "just",
	"should", "now", "is", "are", "was", "were", "be", "been", "being",
	"have", "has", "had", "having", "do", "does", "did", "doing", "would",
	"could", "ought", "i", "you", "he", "she", "it", "we", "they", "them",
	"his", "her", "its", "our", "their", "this", "that", "these", "those",
	"am", "of", "as", "also", "him", "who", "whom", "which", "what",
	"while", "where", "why", "how", "because", "until", "him", "hers",
	"me", "my", "your", "us",
}

// NewStopwords returns the default English stopword set.
func NewStopwords() *Stopwords { return NewStopwordsFrom(defaultStopwords) }

// NewStopwordsFrom builds a stopword set from an explicit list.
func NewStopwordsFrom(words []string) *Stopwords {
	s := &Stopwords{set: make(map[string]struct{}, len(words))}
	for _, w := range words {
		s.set[w] = struct{}{}
	}
	return s
}

// Contains reports whether w is a stopword.
func (s *Stopwords) Contains(w string) bool {
	if s == nil {
		return false
	}
	_, ok := s.set[w]
	return ok
}

// Len reports the number of stopwords in the set.
func (s *Stopwords) Len() int { return len(s.set) }

// AllStopwords reports whether every token in the slice is a stopword.
func (s *Stopwords) AllStopwords(tokens []Token) bool {
	for _, t := range tokens {
		if !s.Contains(t) {
			return false
		}
	}
	return len(tokens) > 0
}
