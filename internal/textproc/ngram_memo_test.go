package textproc

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func memoTokens() []Token {
	return []Token{"deep", "learning", "for", "entity", "search", "deep", "learning"}
}

// TestNGramMemoSharesEnumeration: repeated calls under one config return
// the SAME slice (shared, computed once), and the contents match a direct
// enumeration exactly.
func TestNGramMemoSharesEnumeration(t *testing.T) {
	toks := memoTokens()
	cfg := NGramConfig{MaxLen: 3, Stopwords: NewStopwords()}
	var m NGramMemo
	a := m.NGrams(toks, cfg)
	b := m.NGrams(toks, cfg)
	if len(a) == 0 {
		t.Fatal("empty enumeration")
	}
	if &a[0] != &b[0] {
		t.Fatal("second call re-enumerated instead of sharing the cached slice")
	}
	if want := NGrams(toks, cfg); !reflect.DeepEqual(a, want) {
		t.Fatalf("memoized enumeration %v != direct %v", a, want)
	}
}

// TestNGramMemoKeysByExclusion: configs with different exclude sets (the
// per-entity seed tokens) get distinct cache entries, and the same
// exclude set built in a different map fill order hits the same entry.
func TestNGramMemoKeysByExclusion(t *testing.T) {
	toks := memoTokens()
	sw := NewStopwords()
	var m NGramMemo
	plain := m.NGrams(toks, NGramConfig{MaxLen: 3, Stopwords: sw})

	ex1 := NGramConfig{MaxLen: 3, Stopwords: sw,
		Exclude: map[Token]struct{}{"deep": {}, "search": {}}}
	ex2 := NGramConfig{MaxLen: 3, Stopwords: sw,
		Exclude: map[Token]struct{}{"search": {}, "deep": {}}}
	a := m.NGrams(toks, ex1)
	b := m.NGrams(toks, ex2)
	if &a[0] != &b[0] {
		t.Fatal("equal exclude sets missed the shared cache entry")
	}
	if reflect.DeepEqual(a, plain) {
		t.Fatal("excluded and plain configs collided in the cache")
	}
	if want := NGrams(toks, ex1); !reflect.DeepEqual(a, want) {
		t.Fatalf("excluded enumeration %v != direct %v", a, want)
	}
}

// TestNGramMemoCapStaysCorrect: past the entry cap the memo computes
// without caching — results stay correct, memory stays bounded.
func TestNGramMemoCapStaysCorrect(t *testing.T) {
	toks := memoTokens()
	var m NGramMemo
	for i := 0; i < maxMemoEntries+5; i++ {
		cfg := NGramConfig{MaxLen: 3,
			Exclude: map[Token]struct{}{Token(fmt.Sprintf("x%d", i)): {}}}
		got := m.NGrams(toks, cfg)
		if want := NGrams(toks, cfg); !reflect.DeepEqual(got, want) {
			t.Fatalf("config %d: memo diverged past the cap", i)
		}
	}
	m.mu.Lock()
	n := len(m.byCfg)
	m.mu.Unlock()
	if n > maxMemoEntries {
		t.Fatalf("memo grew to %d entries (cap %d)", n, maxMemoEntries)
	}
}

// TestNGramMemoConcurrent hammers one memo from many goroutines with a
// mix of configs; run under -race this is the direct data-race check for
// the shared-enumeration layer.
func TestNGramMemoConcurrent(t *testing.T) {
	toks := memoTokens()
	sw := NewStopwords()
	cfgs := []NGramConfig{
		{MaxLen: 3, Stopwords: sw},
		{MaxLen: 2, Stopwords: sw},
		{MaxLen: 3, Stopwords: sw, Exclude: map[Token]struct{}{"deep": {}}},
	}
	var m NGramMemo
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				cfg := cfgs[(w+i)%len(cfgs)]
				if got := m.NGrams(toks, cfg); len(got) == 0 {
					t.Error("empty enumeration under concurrency")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
