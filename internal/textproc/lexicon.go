package textproc

import "strings"

// Lexicon holds known multi-word phrases so tokenization can merge adjacent
// terms into a single phrase token ("data" "mining" → "data mining"). The
// paper's tokenization treats a phrase that maps to a type as one word
// (§VI-A); the type dictionary supplies those phrases.
type Lexicon struct {
	phrases map[string]struct{}
	maxLen  int
}

// NewLexicon builds a Lexicon from phrase strings. Only entries with two or
// more space-separated terms matter for merging; single terms are ignored.
func NewLexicon(phrases []string) *Lexicon {
	l := &Lexicon{phrases: make(map[string]struct{}, len(phrases))}
	for _, p := range phrases {
		p = strings.ToLower(strings.TrimSpace(p))
		n := strings.Count(p, " ") + 1
		if n < 2 {
			continue
		}
		l.phrases[p] = struct{}{}
		if n > l.maxLen {
			l.maxLen = n
		}
	}
	return l
}

// MaxLen reports the number of terms in the longest phrase.
func (l *Lexicon) MaxLen() int { return l.maxLen }

// Len reports the number of multi-word phrases.
func (l *Lexicon) Len() int { return len(l.phrases) }

// Contains reports whether the exact phrase is in the lexicon.
func (l *Lexicon) Contains(phrase string) bool {
	_, ok := l.phrases[phrase]
	return ok
}

// MergePhrases greedily merges runs of tokens that form a known phrase,
// longest match first, scanning left to right. Input tokens must already be
// normalized (lowercase).
func (l *Lexicon) MergePhrases(tokens []Token) []Token {
	if l == nil || l.maxLen < 2 || len(tokens) < 2 {
		return tokens
	}
	out := make([]Token, 0, len(tokens))
	for i := 0; i < len(tokens); {
		merged := false
		maxN := l.maxLen
		if rem := len(tokens) - i; rem < maxN {
			maxN = rem
		}
		for n := maxN; n >= 2; n-- {
			cand := strings.Join(tokens[i:i+n], " ")
			if _, ok := l.phrases[cand]; ok {
				out = append(out, cand)
				i += n
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, tokens[i])
			i++
		}
	}
	return out
}
