package textproc

import "strings"

// Lexicon holds known multi-word phrases so tokenization can merge adjacent
// terms into a single phrase token ("data" "mining" → "data mining"). The
// paper's tokenization treats a phrase that maps to a type as one word
// (§VI-A); the type dictionary supplies those phrases.
type Lexicon struct {
	// phrases maps each phrase to its canonical Token so a merge can
	// reuse the interned string instead of materializing a new one per
	// occurrence (the map is probed by string(joinBuf), which Go
	// compiles to an allocation-free lookup).
	phrases map[string]Token
	maxLen  int
}

// NewLexicon builds a Lexicon from phrase strings. Only entries with two or
// more space-separated terms matter for merging; single terms are ignored.
func NewLexicon(phrases []string) *Lexicon {
	l := &Lexicon{phrases: make(map[string]Token, len(phrases))}
	for _, p := range phrases {
		p = strings.ToLower(strings.TrimSpace(p))
		n := strings.Count(p, " ") + 1
		if n < 2 {
			continue
		}
		l.phrases[p] = Token(p)
		if n > l.maxLen {
			l.maxLen = n
		}
	}
	return l
}

// MaxLen reports the number of terms in the longest phrase.
func (l *Lexicon) MaxLen() int { return l.maxLen }

// Len reports the number of multi-word phrases.
func (l *Lexicon) Len() int { return len(l.phrases) }

// Contains reports whether the exact phrase is in the lexicon.
func (l *Lexicon) Contains(phrase string) bool {
	_, ok := l.phrases[phrase]
	return ok
}

// MergePhrases greedily merges runs of tokens that form a known phrase,
// longest match first, scanning left to right. Input tokens must already be
// normalized (lowercase).
func (l *Lexicon) MergePhrases(tokens []Token) []Token {
	if l == nil || l.maxLen < 2 || len(tokens) < 2 {
		return tokens
	}
	out, _ := l.appendMerged(make([]Token, 0, len(tokens)), tokens, nil)
	return out
}

// appendMerged is the append-style core of MergePhrases: merged tokens go
// into dst, and candidate phrases are probed against the lexicon through
// the reusable join buffer (map lookups keyed by string(join) do not
// allocate); a hit appends the lexicon's interned Token, so merging
// allocates nothing. Returns dst and the (possibly grown) join buffer.
func (l *Lexicon) appendMerged(dst []Token, tokens []Token, join []byte) ([]Token, []byte) {
	for i := 0; i < len(tokens); {
		merged := false
		maxN := l.maxLen
		if rem := len(tokens) - i; rem < maxN {
			maxN = rem
		}
		for n := maxN; n >= 2; n-- {
			join = join[:0]
			for j, t := range tokens[i : i+n] {
				if j > 0 {
					join = append(join, ' ')
				}
				join = append(join, t...)
			}
			if ph, ok := l.phrases[string(join)]; ok {
				dst = append(dst, ph)
				i += n
				merged = true
				break
			}
		}
		if !merged {
			dst = append(dst, tokens[i])
			i++
		}
	}
	return dst, join
}
