// Package textproc provides the text-processing substrate for L2Q: a
// tokenizer, stopword filtering, lexicon-driven phrase merging, n-gram
// enumeration with a sliding window, and paragraph handling.
//
// The paper models every page and query as a bag of words, where a word is a
// term or a phrase depending on tokenization (§I "Data model"). Candidate
// queries are enumerated by sliding a window of ℓ ∈ {1..L} words over a page
// (§VI-A "Candidate query enumeration"); this package implements that
// machinery so that the corpus, search and core layers can share one
// definition of "word".
package textproc

import (
	"strings"
	"unicode"
)

// Token is a single word after normalization. A Token may be a multi-word
// phrase (e.g. "data mining") when a Lexicon merged adjacent terms; phrase
// tokens use a single space as the internal separator.
type Token = string

// Tokenizer splits raw text into normalized tokens. The zero value is ready
// to use and performs lowercase ASCII-folding word splitting with no phrase
// merging and no stopword removal.
type Tokenizer struct {
	// Lexicon, when non-nil, merges adjacent terms into known phrases
	// (longest match wins, up to Lexicon.MaxLen terms).
	Lexicon *Lexicon
	// Stopwords, when non-nil, drops stopword tokens after phrase merging.
	Stopwords *Stopwords
	// KeepNumbers retains pure-numeric tokens (years, prices). Default
	// (false) keeps them too unless DropNumbers is set; see DropNumbers.
	DropNumbers bool
	// MinLen drops tokens shorter than MinLen runes (after merging).
	// Zero means keep all.
	MinLen int
}

// Tokenize splits text into normalized tokens, applying phrase merging and
// stopword removal according to the Tokenizer configuration.
func (t *Tokenizer) Tokenize(text string) []Token {
	raw := SplitWords(text)
	if t.Lexicon != nil {
		raw = t.Lexicon.MergePhrases(raw)
	}
	out := raw[:0]
	for _, tok := range raw {
		if t.MinLen > 0 && len([]rune(tok)) < t.MinLen && !isNumeric(tok) {
			continue
		}
		if t.DropNumbers && isNumeric(tok) {
			continue
		}
		if t.Stopwords != nil && t.Stopwords.Contains(tok) {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// SplitWords performs the base tokenization: lowercasing, splitting on any
// rune that is neither a letter nor a digit, with two exceptions that keep
// web-ish tokens intact: '@' and '.' inside a token are preserved when the
// token looks like an email or a dotted host so that regex recognizers
// downstream can classify them.
func SplitWords(text string) []Token {
	var toks []Token
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	runes := []rune(text)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case (r == '@' || r == '.' || r == '-') && b.Len() > 0 && i+1 < len(runes) &&
			(unicode.IsLetter(runes[i+1]) || unicode.IsDigit(runes[i+1])):
			// Keep intra-token punctuation for emails, hosts and
			// hyphenated terms: "snir@illinois.edu", "e-class".
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return toks
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// JoinQuery renders a token sequence as the canonical query string: tokens
// separated by single spaces. It is the inverse of splitting a query on
// spaces, and is used as the map key identifying a query everywhere.
func JoinQuery(tokens []Token) string {
	return strings.Join(tokens, " ")
}

// SplitQuery splits a canonical query string back into its tokens.
func SplitQuery(q string) []Token {
	if q == "" {
		return nil
	}
	return strings.Split(q, " ")
}
