// Package textproc provides the text-processing substrate for L2Q: a
// tokenizer, stopword filtering, lexicon-driven phrase merging, n-gram
// enumeration with a sliding window, and paragraph handling.
//
// The paper models every page and query as a bag of words, where a word is a
// term or a phrase depending on tokenization (§I "Data model"). Candidate
// queries are enumerated by sliding a window of ℓ ∈ {1..L} words over a page
// (§VI-A "Candidate query enumeration"); this package implements that
// machinery so that the corpus, search and core layers can share one
// definition of "word".
//
// Tokenization is on the per-query and per-page hot path (every page
// ingest, every candidate enumeration, every remote search re-tokenizes),
// so the split is allocation-disciplined: ASCII text — the overwhelmingly
// common case for web-ish corpora — runs through a byte-class LUT and
// emits tokens as substrings of the input (zero copies, zero allocations
// beyond the caller's buffer); any non-ASCII byte falls back to the
// retained rune-at-a-time path, kept verbatim as SplitWordsReference and
// held to byte-identical output by differential and fuzz tests.
package textproc

import (
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"
)

// Token is a single word after normalization. A Token may be a multi-word
// phrase (e.g. "data mining") when a Lexicon merged adjacent terms; phrase
// tokens use a single space as the internal separator.
type Token = string

// Tokenizer splits raw text into normalized tokens. The zero value is ready
// to use and performs lowercase ASCII-folding word splitting with no phrase
// merging and no stopword removal.
type Tokenizer struct {
	// Lexicon, when non-nil, merges adjacent terms into known phrases
	// (longest match wins, up to Lexicon.MaxLen terms).
	Lexicon *Lexicon
	// Stopwords, when non-nil, drops stopword tokens after phrase merging.
	Stopwords *Stopwords
	// KeepNumbers retains pure-numeric tokens (years, prices). Default
	// (false) keeps them too unless DropNumbers is set; see DropNumbers.
	DropNumbers bool
	// MinLen drops tokens shorter than MinLen runes (after merging).
	// Zero means keep all.
	MinLen int
}

// tokenScratch is the pooled per-call working state of Tokenizer.AppendTokens:
// the raw split buffer, the phrase-merge buffer, and the byte buffer the
// lexicon probe joins candidate phrases into. The slices hold only string
// headers, so pooling them never retains page text.
type tokenScratch struct {
	raw    []Token
	merged []Token
	join   []byte
}

var tokenScratchPool = sync.Pool{New: func() any { return new(tokenScratch) }}

// Tokenize splits text into normalized tokens, applying phrase merging and
// stopword removal according to the Tokenizer configuration.
func (t *Tokenizer) Tokenize(text string) []Token {
	return t.AppendTokens(nil, text)
}

// AppendTokens is Tokenize with a caller-provided result buffer: tokens are
// appended to dst and the grown slice returned. All intermediate state
// (the raw split, the phrase merge) lives in pooled scratch, so a caller
// that reuses dst across calls tokenizes without allocating — the
// convention every hot path in this repository follows (see DESIGN.md
// "Allocation discipline").
func (t *Tokenizer) AppendTokens(dst []Token, text string) []Token {
	sc := tokenScratchPool.Get().(*tokenScratch)
	raw := AppendTokens(sc.raw[:0], text)
	toks := raw
	if t.Lexicon != nil && t.Lexicon.MaxLen() >= 2 && len(raw) >= 2 {
		sc.merged, sc.join = t.Lexicon.appendMerged(sc.merged[:0], raw, sc.join)
		toks = sc.merged
	}
	for _, tok := range toks {
		if t.MinLen > 0 && utf8.RuneCountInString(tok) < t.MinLen && !isNumeric(tok) {
			continue
		}
		if t.DropNumbers && isNumeric(tok) {
			continue
		}
		if t.Stopwords != nil && t.Stopwords.Contains(tok) {
			continue
		}
		dst = append(dst, tok)
	}
	sc.raw = raw
	tokenScratchPool.Put(sc)
	return dst
}

// Byte classes of the ASCII fast path. A byte is either token-forming
// as-is (lower-case letters, digits), token-forming after folding
// (upper-case letters), a conditional connector ('@' '.' '-': kept inside
// a token when followed by an alphanumeric), or a separator (everything
// else, including all bytes ≥ 0x80 — those divert to the rune path).
const (
	clAlnum byte = 1 << iota // a-z, 0-9, A-Z
	clUpper                  // A-Z only (needs folding)
	clConn                   // @ . -
)

var asciiClass = func() (t [256]byte) {
	for c := 'a'; c <= 'z'; c++ {
		t[c] = clAlnum
	}
	for c := '0'; c <= '9'; c++ {
		t[c] = clAlnum
	}
	for c := 'A'; c <= 'Z'; c++ {
		t[c] = clAlnum | clUpper
	}
	t['@'], t['.'], t['-'] = clConn, clConn, clConn
	return
}()

// SplitWords performs the base tokenization: lowercasing, splitting on any
// rune that is neither a letter nor a digit, with two exceptions that keep
// web-ish tokens intact: '@' and '.' inside a token are preserved when the
// token looks like an email or a dotted host so that regex recognizers
// downstream can classify them.
func SplitWords(text string) []Token {
	return AppendTokens(nil, text)
}

// AppendTokens is SplitWords with a caller-provided buffer. ASCII input is
// split with a byte-class LUT and tokens that are already lower-case are
// emitted as substrings of text — no copy, no allocation beyond dst.
// Input containing any non-ASCII byte takes the retained rune path
// (SplitWordsReference semantics) for the whole text. The two paths are
// differentially tested to produce identical tokens.
func AppendTokens(dst []Token, text string) []Token {
	for i := 0; i < len(text); i++ {
		if text[i] >= utf8.RuneSelf {
			return appendTokensUnicode(dst, text)
		}
	}
	n := len(text)
	i := 0
	for i < n {
		// Skip separators. Connectors never start a token (the reference
		// keeps them only when the builder already has content).
		for i < n && asciiClass[text[i]]&clAlnum == 0 {
			i++
		}
		if i >= n {
			break
		}
		start := i
		needsFold := false
		for i < n {
			cl := asciiClass[text[i]]
			if cl&clAlnum != 0 {
				needsFold = needsFold || cl&clUpper != 0
				i++
				continue
			}
			if cl&clConn != 0 && i+1 < n && asciiClass[text[i+1]]&clAlnum != 0 {
				// Keep intra-token punctuation for emails, hosts and
				// hyphenated terms: "snir@illinois.edu", "e-class".
				i++
				continue
			}
			break
		}
		tok := text[start:i]
		if needsFold {
			tok = strings.ToLower(tok)
		}
		dst = append(dst, tok)
	}
	return dst
}

// SplitWordsReference is the retained rune-at-a-time tokenization the LUT
// fast path is differentially tested against (the repository's fast-path +
// *Reference idiom). It is also the fallback AppendTokens takes for text
// containing non-ASCII bytes, where lowercasing and letter/digit classes
// need full Unicode semantics.
func SplitWordsReference(text string) []Token {
	return appendTokensUnicode(nil, text)
}

func appendTokensUnicode(dst []Token, text string) []Token {
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			dst = append(dst, b.String())
			b.Reset()
		}
	}
	runes := []rune(text)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case (r == '@' || r == '.' || r == '-') && b.Len() > 0 && i+1 < len(runes) &&
			(unicode.IsLetter(runes[i+1]) || unicode.IsDigit(runes[i+1])):
			// Keep intra-token punctuation for emails, hosts and
			// hyphenated terms: "snir@illinois.edu", "e-class".
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return dst
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// JoinQuery renders a token sequence as the canonical query string: tokens
// separated by single spaces. It is the inverse of splitting a query on
// spaces, and is used as the map key identifying a query everywhere.
func JoinQuery(tokens []Token) string {
	return strings.Join(tokens, " ")
}

// SplitQuery splits a canonical query string back into its tokens.
func SplitQuery(q string) []Token {
	if q == "" {
		return nil
	}
	return AppendSplitQuery(make([]Token, 0, strings.Count(q, " ")+1), q)
}

// AppendSplitQuery is SplitQuery with a caller-provided buffer: an indexed
// split that appends each space-separated field of q (substrings, no
// copies) to dst. Field semantics match strings.Split exactly, including
// empty fields from doubled or trailing separators.
func AppendSplitQuery(dst []Token, q string) []Token {
	for {
		i := strings.IndexByte(q, ' ')
		if i < 0 {
			return append(dst, q)
		}
		dst = append(dst, q[:i])
		q = q[i+1:]
	}
}
