package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitWords(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []Token
	}{
		{"simple", "Hello World", []Token{"hello", "world"}},
		{"punct", "parallel, hpc; systems!", []Token{"parallel", "hpc", "systems"}},
		{"email kept intact", "mail snir@illinois.edu now", []Token{"mail", "snir@illinois.edu", "now"}},
		{"host kept intact", "visit cs.illinois.edu today", []Token{"visit", "cs.illinois.edu", "today"}},
		{"hyphen kept", "state-of-the-art design", []Token{"state-of-the-art", "design"}},
		{"trailing dot split", "the end.", []Token{"the", "end"}},
		{"numbers", "BMW 328i from 2009", []Token{"bmw", "328i", "from", "2009"}},
		{"empty", "", nil},
		{"only punct", "...!!!", nil},
		{"unicode", "Café Zürich", []Token{"café", "zürich"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := SplitWords(tc.in)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("SplitWords(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestTokenizerStopwordsAndNumbers(t *testing.T) {
	tok := &Tokenizer{Stopwords: NewStopwords()}
	got := tok.Tokenize("He conducts research on parallel and hpc systems")
	want := []Token{"conducts", "research", "parallel", "hpc", "systems"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}

	tok2 := &Tokenizer{DropNumbers: true}
	got2 := tok2.Tokenize("won award in 2009")
	want2 := []Token{"won", "award", "in"}
	if !reflect.DeepEqual(got2, want2) {
		t.Errorf("Tokenize (DropNumbers) = %v, want %v", got2, want2)
	}
}

func TestTokenizerMinLen(t *testing.T) {
	tok := &Tokenizer{MinLen: 2}
	got := tok.Tokenize("a b cd 7 efg")
	// Single-letter tokens dropped; pure numbers exempt from MinLen.
	want := []Token{"cd", "7", "efg"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize (MinLen) = %v, want %v", got, want)
	}
}

func TestLexiconMergePhrases(t *testing.T) {
	lex := NewLexicon([]string{"data mining", "high performance computing", "single"})
	tests := []struct {
		in   []Token
		want []Token
	}{
		{
			[]Token{"his", "data", "mining", "papers"},
			[]Token{"his", "data mining", "papers"},
		},
		{
			[]Token{"high", "performance", "computing", "systems"},
			[]Token{"high performance computing", "systems"},
		},
		{
			[]Token{"data", "mining"},
			[]Token{"data mining"},
		},
		{
			[]Token{"data", "science"},
			[]Token{"data", "science"},
		},
		{
			[]Token{"single"},
			[]Token{"single"}, // 1-word entries are ignored
		},
	}
	for _, tc := range tests {
		got := lex.MergePhrases(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("MergePhrases(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLexiconLongestMatchWins(t *testing.T) {
	lex := NewLexicon([]string{"data mining", "data mining systems"})
	got := lex.MergePhrases([]Token{"on", "data", "mining", "systems", "today"})
	want := []Token{"on", "data mining systems", "today"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergePhrases = %v, want %v", got, want)
	}
}

func TestNGramsBasic(t *testing.T) {
	cfg := NGramConfig{MaxLen: 2}
	got := NGrams([]Token{"x", "y", "z"}, cfg)
	want := []string{"x", "y", "z", "x y", "y z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
}

func TestNGramsStopwordBoundaries(t *testing.T) {
	cfg := NGramConfig{MaxLen: 3, Stopwords: NewStopwords()}
	got := NGrams([]Token{"university", "of", "illinois"}, cfg)
	// "of" alone, "university of", "of illinois" are rejected; the interior
	// stopword in "university of illinois" is allowed.
	want := []string{"university", "illinois", "university of illinois"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
}

func TestNGramsExclude(t *testing.T) {
	cfg := NGramConfig{
		MaxLen:  2,
		Exclude: map[Token]struct{}{"snir": {}},
	}
	got := NGrams([]Token{"marc", "snir", "hpc"}, cfg)
	want := []string{"marc", "hpc"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
}

func TestNGramsDedup(t *testing.T) {
	cfg := NGramConfig{MaxLen: 1}
	got := NGrams([]Token{"hpc", "hpc", "hpc"}, cfg)
	if !reflect.DeepEqual(got, []string{"hpc"}) {
		t.Errorf("NGrams dedup = %v", got)
	}
}

func TestCountNGrams(t *testing.T) {
	cfg := NGramConfig{MaxLen: 2}
	counts := CountNGrams([]Token{"a1", "b1", "a1", "b1"}, cfg, nil)
	if counts["a1"] != 2 || counts["b1"] != 2 {
		t.Errorf("unigram counts wrong: %v", counts)
	}
	if counts["a1 b1"] != 2 || counts["b1 a1"] != 1 {
		t.Errorf("bigram counts wrong: %v", counts)
	}
}

func TestContainsSubsequence(t *testing.T) {
	page := []Token{"he", "studies", "parallel", "computing", "at", "uiuc"}
	tests := []struct {
		q    []Token
		want bool
	}{
		{[]Token{"parallel"}, true},
		{[]Token{"parallel", "computing"}, true},
		{[]Token{"studies", "parallel", "computing"}, true},
		{[]Token{"parallel", "uiuc"}, false},
		{[]Token{"uiuc"}, true},
		{[]Token{}, false},
		{[]Token{"he", "studies", "parallel", "computing", "at", "uiuc", "x"}, false},
	}
	for _, tc := range tests {
		if got := ContainsSubsequence(page, tc.q); got != tc.want {
			t.Errorf("ContainsSubsequence(page, %v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestJoinSplitQueryRoundTrip(t *testing.T) {
	f := func(parts []string) bool {
		// Build tokens without spaces to make round-trip well-defined.
		toks := make([]Token, 0, len(parts))
		for _, p := range parts {
			p = strings.Map(func(r rune) rune {
				if r == ' ' {
					return '_'
				}
				return r
			}, p)
			if p == "" {
				p = "x"
			}
			toks = append(toks, p)
		}
		if len(toks) == 0 {
			return SplitQuery(JoinQuery(toks)) == nil
		}
		back := SplitQuery(JoinQuery(toks))
		return reflect.DeepEqual(back, toks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStopwordsAllStopwords(t *testing.T) {
	sw := NewStopwords()
	if !sw.AllStopwords([]Token{"the", "of"}) {
		t.Error("expected all-stopword detection")
	}
	if sw.AllStopwords([]Token{"the", "award"}) {
		t.Error("award is not a stopword")
	}
	if sw.AllStopwords(nil) {
		t.Error("empty slice must not count as all-stopwords")
	}
	var nilSW *Stopwords
	if nilSW.Contains("the") {
		t.Error("nil stopwords must contain nothing")
	}
}
