package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// parityCases are the shapes the ASCII LUT fast path and the retained
// rune-at-a-time reference must agree on: the web-ish connector cases the
// tokenizer exists for (emails, dotted hosts, hyphenated terms), the
// boundary placements that exercise the lookahead, and the non-ASCII
// inputs that divert to the reference path wholesale.
var parityCases = []string{
	"",
	"   ",
	"plain words only",
	"He published MANY Data Mining papers.",
	"mail snir@illinois.edu or m.snir@cs.illinois.edu today",
	"see www.cs.illinois.edu and sub.domain.example.co.uk now",
	"e-class state-of-the-art twenty-one-year-old",
	"mixed: a-b.c@d.e-f.g",
	".leading @connectors -never start",
	"trailing. connectors@ stay- out",
	"doubled..dots and--dashes and@@ats split",
	"a.b..c d-e--f g@h@@i",
	"x.",
	".x",
	"-",
	"...",
	"@.-@.-",
	"a",
	"2016 was the year of 10-k filings worth $3.5M",
	"tabs\tand\nnewlines\r\nsplit too",
	"punct!uation?marks;every,where(and)more[besides]",
	"Öztürk studied naïve Bayes at Universität Zürich",
	"数据挖掘 与 并行计算",
	"café résumé déjà-vu",
	"mixed ascii and Müller's ünïcode@host.de tokens",
	"ΔE = mc² for Ω(n log n)",
	"é́ combining marks", // é + combining acute
	"emoji 🙂 between 🚀 words",
	"\xff\xfe invalid utf8 bytes",
}

func TestSplitWordsParity(t *testing.T) {
	for _, text := range parityCases {
		fast := SplitWords(text)
		ref := SplitWordsReference(text)
		if !reflect.DeepEqual(fast, ref) {
			t.Errorf("SplitWords(%q):\n  fast %q\n  ref  %q", text, fast, ref)
		}
	}
}

// TestSplitWordsParityQuick drives the differential property over random
// unicode strings (testing/quick generates arbitrary rune sequences, so
// this covers the ASCII/non-ASCII dispatch boundary from both sides).
func TestSplitWordsParityQuick(t *testing.T) {
	f := func(text string) bool {
		return reflect.DeepEqual(SplitWords(text), SplitWordsReference(text))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FuzzSplitWordsParity is the fuzz form of the differential test. CI runs
// the seed corpus; `go test -fuzz=FuzzSplitWordsParity ./internal/textproc/`
// explores further.
func FuzzSplitWordsParity(f *testing.F) {
	for _, text := range parityCases {
		f.Add(text)
	}
	f.Fuzz(func(t *testing.T, text string) {
		fast := SplitWords(text)
		ref := SplitWordsReference(text)
		if !reflect.DeepEqual(fast, ref) {
			t.Errorf("SplitWords(%q):\n  fast %q\n  ref  %q", text, fast, ref)
		}
	})
}

// TestTokenizeParity holds the full configured pipeline (LUT split +
// interned phrase merge + filters) to the reference pipeline's output.
func TestTokenizeParity(t *testing.T) {
	tok := &Tokenizer{
		Lexicon:   NewLexicon([]string{"data mining", "parallel computing", "naïve bayes"}),
		Stopwords: NewStopwords(),
		MinLen:    2,
	}
	for _, text := range append(parityCases,
		"He studies Data Mining and Parallel Computing",
		"Öztürk applies Naïve Bayes to data mining",
	) {
		got := tok.Tokenize(text)
		want := tokenizeReference(tok, text)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q):\n  got  %q\n  want %q", text, got, want)
		}
	}
}

// tokenizeReference reconstructs Tokenize from the reference split and
// the allocating MergePhrases — the pre-refactor pipeline.
func tokenizeReference(t *Tokenizer, text string) []Token {
	toks := SplitWordsReference(text)
	if t.Lexicon != nil {
		toks = t.Lexicon.MergePhrases(toks)
	}
	var out []Token
	for _, tok := range toks {
		if t.MinLen > 0 && len([]rune(tok)) < t.MinLen && !isNumeric(tok) {
			continue
		}
		if t.DropNumbers && isNumeric(tok) {
			continue
		}
		if t.Stopwords != nil && t.Stopwords.Contains(tok) {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// TestAppendTokensReuse verifies the buffer-reuse contract: appending
// into a recycled dst yields the same tokens as a fresh call, and an
// existing prefix is preserved.
func TestAppendTokensReuse(t *testing.T) {
	tok := &Tokenizer{Lexicon: NewLexicon([]string{"data mining"})}
	dst := tok.AppendTokens(nil, "noise to size the buffer with data mining terms")
	for _, text := range parityCases {
		want := tok.Tokenize(text)
		dst = tok.AppendTokens(dst[:0], text)
		if !reflect.DeepEqual(append([]Token{}, dst...), append([]Token{}, want...)) {
			t.Fatalf("reuse mismatch on %q: got %q want %q", text, dst, want)
		}
	}
	prefix := []Token{"kept"}
	got := tok.AppendTokens(prefix, "data mining works")
	if len(got) == 0 || got[0] != "kept" {
		t.Fatalf("prefix not preserved: %q", got)
	}
}

// TestAppendSplitQueryParity pins the indexed query split to
// strings.Split semantics, empty fields included.
func TestAppendSplitQueryParity(t *testing.T) {
	cases := []string{
		"one", "two words", "a b c d", "", " ", "  ", "a ", " a", "a  b", "trailing space ",
	}
	for _, q := range cases {
		got := AppendSplitQuery(nil, q)
		want := strings.Split(q, " ")
		if !reflect.DeepEqual([]string(got), want) {
			t.Errorf("AppendSplitQuery(%q) = %q, want %q", q, got, want)
		}
	}
	f := func(q string) bool {
		return reflect.DeepEqual([]string(AppendSplitQuery(nil, q)), strings.Split(q, " "))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
