package textproc

import "testing"

// The alloc benchmarks below are the CI allocation gate's inputs
// (scripts/alloc_gate.sh pins a ceiling per benchmark name): they
// measure allocations per operation on the tokenization hot path, which
// runs once per harvested page and once per issued query. Renaming one
// breaks the gate — update the script in the same change.

// allocBenchLower is pure lowercase ASCII: the LUT fast path end to end,
// tokens sliced zero-copy from the input. Steady-state ceiling: 0.
const allocBenchLower = "he published many data mining papers and studies parallel computing systems at the university in 2016"

// allocBenchMixed adds capitalization (each capitalized word costs one
// ToLower string) and connector shapes (emails, dotted hosts, hyphens).
const allocBenchMixed = "Dr. Smith-Jones published Data Mining papers; mail s.jones@cs.example.edu or see www.cs.example.edu for Parallel Computing in 2016."

func allocBenchTokenizer() *Tokenizer {
	return &Tokenizer{Lexicon: NewLexicon([]string{"data mining", "parallel computing"})}
}

// BenchmarkTokenizeAllocs is the tokenization allocation trajectory:
//
//	append/lower    AppendTokens into a reused buffer, lowercase ASCII —
//	                the page-ingest steady state. Pinned at 0 allocs/op.
//	append/mixed    same, with case folds and connectors: allocations
//	                are exactly the per-token ToLower strings.
//	convenience     Tokenize (fresh result slice per call).
//	reference       the retained pre-LUT implementation, for the ratio.
func BenchmarkTokenizeAllocs(b *testing.B) {
	tok := allocBenchTokenizer()
	b.Run("append/lower", func(b *testing.B) {
		var dst []Token
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = tok.AppendTokens(dst[:0], allocBenchLower)
		}
		if len(dst) == 0 {
			b.Fatal("no tokens")
		}
	})
	b.Run("append/mixed", func(b *testing.B) {
		var dst []Token
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = tok.AppendTokens(dst[:0], allocBenchMixed)
		}
		if len(dst) == 0 {
			b.Fatal("no tokens")
		}
	})
	b.Run("convenience", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(tok.Tokenize(allocBenchMixed)) == 0 {
				b.Fatal("no tokens")
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			words := SplitWordsReference(allocBenchMixed)
			merged := tok.Lexicon.MergePhrases(words)
			if len(merged) == 0 {
				b.Fatal("no tokens")
			}
		}
	})
}

// BenchmarkNGramsAllocs measures candidate n-gram enumeration, the inner
// loop of domain-model learning and candidate-pool refresh. The append
// variant reuses the destination; remaining allocations are only the
// strings of multi-word grams actually emitted.
func BenchmarkNGramsAllocs(b *testing.B) {
	tok := allocBenchTokenizer()
	toks := tok.Tokenize(allocBenchMixed)
	cfg := DefaultNGramConfig()
	b.Run("append", func(b *testing.B) {
		var dst []string
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = AppendNGrams(dst[:0], toks, cfg)
		}
		if len(dst) == 0 {
			b.Fatal("no grams")
		}
	})
	b.Run("convenience", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(NGrams(toks, cfg)) == 0 {
				b.Fatal("no grams")
			}
		}
	})
}
