// Package classify implements the aspect classifiers that materialize the
// relevance function Y (paper §I "Input", §VI-A "Entity aspects").
//
// The paper trains one CRF per aspect to classify paragraphs as relevant or
// not, reports their accuracy (Fig. 9, 0.85–0.99), and then *takes the
// classifier output as ground truth* for the harvesting experiments. We
// mirror that protocol with a multinomial Naive Bayes classifier per aspect:
// train on the domain split's generator-labeled paragraphs, report accuracy
// against generator labels, and use predictions as Y during harvesting.
package classify

import (
	"math"
	"sync"

	"l2q/internal/corpus"
	"l2q/internal/par"
	"l2q/internal/textproc"
)

// RelevanceThreshold is the fraction of relevant paragraphs a page needs to
// count as relevant to an aspect, both for generator ground truth and for
// classifier-materialized Y. Pages in the synthetic corpus devote ~60% of
// paragraphs to their primary aspect and ≤25% to any minor aspect, so 0.3
// cleanly separates "page about the aspect" from "page that mentions it".
const RelevanceThreshold = 0.3

// GroundTruth reports whether the page is relevant to the aspect under the
// generator's paragraph labels. Only tests and the evaluation harness use
// this; harvesting methods see classifier output exclusively.
func GroundTruth(p *corpus.Page, a corpus.Aspect) bool {
	return p.AspectFraction(a) >= RelevanceThreshold
}

// Classifier is a binary multinomial Naive Bayes paragraph classifier for
// one aspect, with add-one smoothing. Build with Train; the zero value is
// not usable.
type Classifier struct {
	Aspect corpus.Aspect

	logPrior [2]float64 // class log-priors: index 1 = relevant
	logLik   [2]map[textproc.Token]float64
	logUnk   [2]float64 // unseen-token log-likelihood per class
}

// Train fits a classifier for aspect a from the paragraphs of the given
// pages, using generator labels as supervision (a paragraph is a positive
// example iff its label equals a). Returns nil if either class is empty.
func Train(a corpus.Aspect, pages []*corpus.Page) *Classifier {
	counts := [2]map[textproc.Token]int{make(map[textproc.Token]int), make(map[textproc.Token]int)}
	totals := [2]int{}
	nDocs := [2]int{}
	vocab := make(map[textproc.Token]struct{})

	for _, p := range pages {
		for i := range p.Paras {
			para := &p.Paras[i]
			cls := 0
			if para.Aspect == a {
				cls = 1
			}
			nDocs[cls]++
			for _, t := range para.Tokens {
				counts[cls][t]++
				totals[cls]++
				vocab[t] = struct{}{}
			}
		}
	}
	if nDocs[0] == 0 || nDocs[1] == 0 {
		return nil
	}

	c := &Classifier{Aspect: a}
	v := float64(len(vocab))
	total := float64(nDocs[0] + nDocs[1])
	for cls := 0; cls < 2; cls++ {
		c.logPrior[cls] = math.Log(float64(nDocs[cls]) / total)
		denom := float64(totals[cls]) + v + 1
		c.logUnk[cls] = math.Log(1 / denom)
		lik := make(map[textproc.Token]float64, len(counts[cls]))
		for t, n := range counts[cls] {
			lik[t] = math.Log((float64(n) + 1) / denom)
		}
		c.logLik[cls] = lik
	}
	return c
}

// Params is the trained state of a Classifier, exported so a persistence
// layer (internal/store's domain artifact) can round-trip classifiers
// exactly: the float64 parameters are carried verbatim, so a restored
// classifier predicts byte-identically to the trained one.
type Params struct {
	Aspect   corpus.Aspect
	LogPrior [2]float64
	LogUnk   [2]float64
	LogLik   [2]map[textproc.Token]float64
}

// Params exposes the classifier's trained parameters. The maps are the
// classifier's own — callers must not mutate them.
func (c *Classifier) Params() Params {
	return Params{Aspect: c.Aspect, LogPrior: c.logPrior, LogUnk: c.logUnk, LogLik: c.logLik}
}

// FromParams reconstructs a Classifier from persisted parameters.
func FromParams(p Params) *Classifier {
	return &Classifier{Aspect: p.Aspect, logPrior: p.LogPrior, logLik: p.LogLik, logUnk: p.LogUnk}
}

// scoreClass returns the joint log-probability of the tokens under a class.
func (c *Classifier) scoreClass(tokens []textproc.Token, cls int) float64 {
	s := c.logPrior[cls]
	lik := c.logLik[cls]
	for _, t := range tokens {
		if lp, ok := lik[t]; ok {
			s += lp
		} else {
			s += c.logUnk[cls]
		}
	}
	return s
}

// PredictPara reports whether a paragraph (token slice) is relevant.
func (c *Classifier) PredictPara(tokens []textproc.Token) bool {
	return c.scoreClass(tokens, 1) > c.scoreClass(tokens, 0)
}

// PageScore returns the fraction of the page's paragraphs predicted
// relevant — the real-valued page relevance the paper mentions as the
// generalization of binary Y.
func (c *Classifier) PageScore(p *corpus.Page) float64 {
	if len(p.Paras) == 0 {
		return 0
	}
	n := 0
	for i := range p.Paras {
		if c.PredictPara(p.Paras[i].Tokens) {
			n++
		}
	}
	return float64(n) / float64(len(p.Paras))
}

// PageRelevant materializes the binary Y(p): the page is relevant iff at
// least RelevanceThreshold of its paragraphs are predicted relevant.
func (c *Classifier) PageRelevant(p *corpus.Page) bool {
	return c.PageScore(p) >= RelevanceThreshold
}

// Accuracy measures paragraph-level accuracy against generator labels —
// the number Fig. 9 reports per aspect.
func (c *Classifier) Accuracy(pages []*corpus.Page) float64 {
	correct, total := 0, 0
	for _, p := range pages {
		for i := range p.Paras {
			para := &p.Paras[i]
			want := para.Aspect == c.Aspect
			got := c.PredictPara(para.Tokens)
			if got == want {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Set holds one trained classifier per target aspect plus a page-level
// prediction cache (harvesting re-classifies the same pages every
// iteration; the cache keeps that O(1) after first touch). Set is safe for
// concurrent use.
type Set struct {
	ByAspect map[corpus.Aspect]*Classifier

	mu    sync.RWMutex
	cache map[cacheKey]bool
}

type cacheKey struct {
	a  corpus.Aspect
	id corpus.PageID
}

// TrainSet trains a classifier for every aspect on the given pages.
// Aspects whose training data is degenerate are silently skipped (callers
// can check membership). Per-aspect training runs on a bounded worker
// pool (GOMAXPROCS); aspects are independent, so the result is identical
// to serial training. Use TrainSetWorkers for an explicit bound.
func TrainSet(aspects []corpus.Aspect, pages []*corpus.Page) *Set {
	return TrainSetWorkers(aspects, pages, 0)
}

// TrainSetWorkers is TrainSet with an explicit worker bound: 0 picks
// GOMAXPROCS, 1 trains serially. Value-neutral — every worker count
// trains identical classifiers.
func TrainSetWorkers(aspects []corpus.Aspect, pages []*corpus.Page, workers int) *Set {
	cs := make([]*Classifier, len(aspects))
	par.For(len(aspects), workers, func(i int) {
		cs[i] = Train(aspects[i], pages)
	})
	s := &Set{
		ByAspect: make(map[corpus.Aspect]*Classifier, len(aspects)),
		cache:    make(map[cacheKey]bool),
	}
	for i, a := range aspects {
		if cs[i] != nil {
			s.ByAspect[a] = cs[i]
		}
	}
	return s
}

// NewSet wraps already-trained classifiers (e.g. restored from a
// persisted domain artifact, store.LoadDomains) into a Set with a fresh
// prediction cache. Nil entries are skipped.
func NewSet(cs []*Classifier) *Set {
	s := &Set{
		ByAspect: make(map[corpus.Aspect]*Classifier, len(cs)),
		cache:    make(map[cacheKey]bool),
	}
	for _, c := range cs {
		if c != nil {
			s.ByAspect[c.Aspect] = c
		}
	}
	return s
}

// Relevant reports classifier-materialized Y(p) for an aspect, cached by
// page ID. Panics if no classifier exists for the aspect (programmer
// error: harvesting an untrained aspect).
func (s *Set) Relevant(a corpus.Aspect, p *corpus.Page) bool {
	k := cacheKey{a: a, id: p.ID}
	s.mu.RLock()
	v, ok := s.cache[k]
	s.mu.RUnlock()
	if ok {
		return v
	}
	c, ok := s.ByAspect[a]
	if !ok {
		panic("classify: no classifier for aspect " + string(a))
	}
	v = c.PageRelevant(p)
	s.mu.Lock()
	s.cache[k] = v
	s.mu.Unlock()
	return v
}

// YFunc returns the page-relevance function for an aspect, suitable for
// handing to the core as the materialized Y.
func (s *Set) YFunc(a corpus.Aspect) func(*corpus.Page) bool {
	return func(p *corpus.Page) bool { return s.Relevant(a, p) }
}

// Has reports whether the aspect has a trained classifier.
func (s *Set) Has(a corpus.Aspect) bool {
	_, ok := s.ByAspect[a]
	return ok
}

// AccuracyOf measures an aspect's paragraph accuracy on pages.
func (s *Set) AccuracyOf(a corpus.Aspect, pages []*corpus.Page) float64 {
	c, ok := s.ByAspect[a]
	if !ok {
		return 0
	}
	return c.Accuracy(pages)
}
