package classify

import (
	"sync"
	"testing"

	"l2q/internal/synth"
)

// TestSetConcurrentRelevant hammers the prediction cache from many
// goroutines; run with -race to catch regressions in the locking.
func TestSetConcurrentRelevant(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	set := TrainSet(g.Aspects, g.Corpus.Pages)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := g.Corpus.Pages[(w*37+i)%len(g.Corpus.Pages)]
				a := g.Aspects[(w+i)%len(g.Aspects)]
				set.Relevant(a, p)
			}
		}(w)
	}
	wg.Wait()
	// Answers must be stable after the stampede.
	p := g.Corpus.Pages[0]
	want := set.ByAspect[g.Aspects[0]].PageRelevant(p)
	if got := set.Relevant(g.Aspects[0], p); got != want {
		t.Fatalf("cached answer %v differs from direct %v", got, want)
	}
}
