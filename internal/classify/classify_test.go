package classify

import (
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/synth"
)

func generated(t *testing.T, d corpus.Domain) *synth.Generated {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainAndAccuracyResearchers(t *testing.T) {
	g := generated(t, synth.DomainResearchers)
	// Train on the first half of entities, evaluate on the second half —
	// the same protocol the experiments use.
	n := g.Corpus.NumEntities()
	var trainPages, testPages []*corpus.Page
	for _, p := range g.Corpus.Pages {
		if int(p.Entity) < n/2 {
			trainPages = append(trainPages, p)
		} else {
			testPages = append(testPages, p)
		}
	}
	for _, a := range g.Aspects {
		c := Train(a, trainPages)
		if c == nil {
			t.Fatalf("no classifier for %s", a)
		}
		acc := c.Accuracy(testPages)
		if acc < 0.85 {
			t.Errorf("aspect %s accuracy %.3f < 0.85 (paper range 0.85–0.99)", a, acc)
		}
	}
}

func TestTrainSetAndCache(t *testing.T) {
	g := generated(t, synth.DomainCars)
	set := TrainSet(g.Aspects, g.Corpus.Pages)
	if len(set.ByAspect) != len(g.Aspects) {
		t.Fatalf("trained %d classifiers, want %d", len(set.ByAspect), len(g.Aspects))
	}
	p := g.Corpus.Pages[0]
	a := g.Aspects[0]
	first := set.Relevant(a, p)
	second := set.Relevant(a, p) // cached path
	if first != second {
		t.Fatal("cache changed the answer")
	}
	y := set.YFunc(a)
	if y(p) != first {
		t.Fatal("YFunc disagrees with Relevant")
	}
}

func TestClassifierMatchesGroundTruthMostly(t *testing.T) {
	// Page-level agreement between classifier Y and generator truth must
	// be high, otherwise the harvesting experiments measure noise.
	g := generated(t, synth.DomainResearchers)
	set := TrainSet(g.Aspects, g.Corpus.Pages)
	agree, total := 0, 0
	for _, a := range g.Aspects {
		for _, p := range g.Corpus.Pages {
			if set.Relevant(a, p) == GroundTruth(p, a) {
				agree++
			}
			total++
		}
	}
	frac := float64(agree) / float64(total)
	if frac < 0.9 {
		t.Fatalf("page-level agreement %.3f < 0.9", frac)
	}
}

func TestTrainDegenerate(t *testing.T) {
	// No positive paragraphs → Train must return nil, not a broken model.
	pages := []*corpus.Page{
		{ID: 1, Entity: 0, Paras: []corpus.Paragraph{
			{Tokens: []string{"hello", "world"}, Aspect: "OTHER"},
		}},
	}
	if c := Train("RESEARCH", pages); c != nil {
		t.Fatal("expected nil classifier for missing positives")
	}
	if c := Train("OTHER", pages); c != nil {
		t.Fatal("expected nil classifier for missing negatives")
	}
}

func TestPageScoreBounds(t *testing.T) {
	g := generated(t, synth.DomainResearchers)
	set := TrainSet(g.Aspects, g.Corpus.Pages)
	c := set.ByAspect[g.Aspects[0]]
	for _, p := range g.Corpus.Pages[:50] {
		s := c.PageScore(p)
		if s < 0 || s > 1 {
			t.Fatalf("PageScore out of range: %f", s)
		}
	}
	empty := &corpus.Page{}
	if c.PageScore(empty) != 0 {
		t.Fatal("empty page must score 0")
	}
}

func TestRelevantPanicsOnUnknownAspect(t *testing.T) {
	g := generated(t, synth.DomainResearchers)
	set := TrainSet(g.Aspects, g.Corpus.Pages)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	set.Relevant("NOT_AN_ASPECT", g.Corpus.Pages[0])
}
