package classify

import (
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/crf"
	"l2q/internal/synth"
)

// trainTestSplit returns the synthetic pages split in half per entity, so
// train and test cover the same entities but disjoint pages.
func trainTestSplit(t *testing.T, domain corpus.Domain) (g *synth.Generated, train, test []*corpus.Page) {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(domain))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Corpus.Entities {
		pages := g.Corpus.PagesOf(e.ID)
		half := len(pages) / 2
		train = append(train, pages[:half]...)
		test = append(test, pages[half:]...)
	}
	return g, train, test
}

func TestCRFAccuracyOnSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("CRF training is seconds-scale")
	}
	g, train, test := trainTestSplit(t, synth.DomainResearchers)
	aspect := g.Aspects[0]
	c := TrainCRF(aspect, train, crf.TrainConfig{})
	if c == nil {
		t.Fatal("no CRF trained")
	}
	if acc := c.Accuracy(test); acc < 0.9 {
		t.Errorf("CRF accuracy %.3f < 0.9 on held-out pages", acc)
	}
}

// TestCRFvsNBAgreeOnY verifies both classifier families materialize a
// consistent Y on clearly relevant and clearly irrelevant pages — the
// property the harvesting comparison relies on when swapping families.
func TestCRFvsNBAgreeOnY(t *testing.T) {
	if testing.Short() {
		t.Skip("CRF training is seconds-scale")
	}
	g, train, test := trainTestSplit(t, synth.DomainCars)
	aspect := g.Aspects[0]
	nb := Train(aspect, train)
	cr := TrainCRF(aspect, train, crf.TrainConfig{})
	if nb == nil || cr == nil {
		t.Fatal("training failed")
	}
	agree, total := 0, 0
	for _, p := range test {
		if nb.PageRelevant(p) == cr.PageRelevant(p) {
			agree++
		}
		total++
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Errorf("NB and CRF agree on only %.2f of pages", frac)
	}
}

func TestTrainCRFDegenerate(t *testing.T) {
	// No positive paragraphs for the aspect → nil.
	page := &corpus.Page{ID: 1, Paras: []corpus.Paragraph{
		{Text: "a", Tokens: []string{"a"}, Aspect: "OTHER"},
	}}
	if c := TrainCRF("MISSING", []*corpus.Page{page}, crf.TrainConfig{}); c != nil {
		t.Error("expected nil classifier for aspect with no positives")
	}
	// No pages at all.
	if c := TrainCRF("X", nil, crf.TrainConfig{}); c != nil {
		t.Error("expected nil classifier for empty corpus")
	}
}

func TestCRFSetCachesAndPanics(t *testing.T) {
	g, train, test := trainTestSplit(t, synth.DomainCars)
	set := TrainCRFSet(g.Aspects[:1], train, crf.TrainConfig{Epochs: 2, LearnRate: 0.2, Decay: 1e-4, L2: 0.1, Seed: 1})
	a := g.Aspects[0]
	if _, ok := set.ByAspect[a]; !ok {
		t.Fatalf("aspect %s not trained", a)
	}
	p := test[0]
	first := set.Relevant(a, p)
	if second := set.Relevant(a, p); second != first {
		t.Error("cache changed the answer")
	}
	y := set.YFunc(a)
	if y(p) != first {
		t.Error("YFunc disagrees with Relevant")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for untrained aspect")
		}
	}()
	set.Relevant("UNTRAINED", p)
}

func TestCRFPageScoreEmptyPage(t *testing.T) {
	g, train, _ := trainTestSplit(t, synth.DomainCars)
	c := TrainCRF(g.Aspects[0], train, crf.TrainConfig{Epochs: 1, LearnRate: 0.2, Decay: 0, L2: 0, Seed: 1})
	if c == nil {
		t.Fatal("training failed")
	}
	empty := &corpus.Page{ID: 999}
	if s := c.PageScore(empty); s != 0 {
		t.Errorf("empty page score = %v", s)
	}
	if c.PageRelevant(empty) {
		t.Error("empty page relevant")
	}
}
