package classify

import (
	"reflect"
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/crf"
	"l2q/internal/synth"
)

func trainPages(t testing.TB) ([]corpus.Aspect, []*corpus.Page) {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	return g.Aspects, g.Corpus.Pages
}

// TestTrainSetWorkerInvariance: parallel per-aspect training is a pure
// wall-clock optimization — every worker count trains identical
// classifiers (training is deterministic and aspects are independent).
func TestTrainSetWorkerInvariance(t *testing.T) {
	aspects, pages := trainPages(t)
	serial := TrainSetWorkers(aspects, pages, 1)
	for _, w := range []int{0, 2, 8} {
		par := TrainSetWorkers(aspects, pages, w)
		if !reflect.DeepEqual(serial.ByAspect, par.ByAspect) {
			t.Fatalf("workers=%d trained different classifiers than serial", w)
		}
	}
	if len(serial.ByAspect) == 0 {
		t.Fatal("no classifiers trained")
	}
}

// TestTrainCRFSetWorkerInvariance mirrors the invariance check for the
// CRF family (each TrainCRF seeds its own RNG, so concurrency cannot
// perturb it).
func TestTrainCRFSetWorkerInvariance(t *testing.T) {
	aspects, pages := trainPages(t)
	pages = pages[:len(pages)/4] // CRF training is the slow family
	serial := TrainCRFSetWorkers(aspects, pages, crf.DefaultTrainConfig(), 1)
	par := TrainCRFSetWorkers(aspects, pages, crf.DefaultTrainConfig(), 4)
	if !reflect.DeepEqual(serial.ByAspect, par.ByAspect) {
		t.Fatal("parallel CRF training diverged from serial")
	}
}

// TestParamsRoundTrip: a classifier rebuilt from its exported parameters
// predicts identically on every page and paragraph.
func TestParamsRoundTrip(t *testing.T) {
	aspects, pages := trainPages(t)
	set := TrainSet(aspects, pages)
	for a, c := range set.ByAspect {
		restored := FromParams(c.Params())
		if restored.Aspect != a {
			t.Fatalf("aspect lost: %s → %s", a, restored.Aspect)
		}
		for _, p := range pages {
			if restored.PageRelevant(p) != c.PageRelevant(p) {
				t.Fatalf("aspect %s: restored classifier disagrees on page %d", a, p.ID)
			}
			if restored.PageScore(p) != c.PageScore(p) {
				t.Fatalf("aspect %s: restored score drifts on page %d", a, p.ID)
			}
		}
	}

	// NewSet wraps restored classifiers with a working cache.
	var cs []*Classifier
	for _, c := range set.ByAspect {
		cs = append(cs, FromParams(c.Params()))
	}
	ns := NewSet(cs)
	for a := range set.ByAspect {
		if !ns.Has(a) {
			t.Fatalf("NewSet lost aspect %s", a)
		}
		for _, p := range pages[:8] {
			if ns.Relevant(a, p) != set.Relevant(a, p) {
				t.Fatalf("NewSet predicts differently for %s", a)
			}
		}
	}
}
