package classify

import (
	"sort"
	"sync"

	"l2q/internal/corpus"
	"l2q/internal/crf"
	"l2q/internal/par"
)

// CRFClassifier is the paper-faithful alternative to the Naive Bayes
// Classifier: a binary linear-chain CRF over each page's paragraph
// sequence (§VI-A trains "one classifier for each Y based on conditional
// random fields"). Unlike NB, it exploits the fact that paragraphs about
// the same aspect come in runs within a page.
//
// Both classifier families satisfy PageClassifier, so the harvesting
// pipeline can materialize Y from either.
type CRFClassifier struct {
	Aspect corpus.Aspect

	model *crf.Model
	feats *crf.FeatureMap
}

// PageClassifier is the interface both classifier families implement: it
// is everything the harvesting pipeline needs from a materialized Y.
type PageClassifier interface {
	// PageRelevant materializes the binary Y(p).
	PageRelevant(p *corpus.Page) bool
	// PageScore is the real-valued relevance generalization.
	PageScore(p *corpus.Page) float64
	// Accuracy is paragraph-level accuracy against generator labels.
	Accuracy(pages []*corpus.Page) float64
}

var (
	_ PageClassifier = (*Classifier)(nil)
	_ PageClassifier = (*CRFClassifier)(nil)
)

// YProvider is the per-aspect classifier-set interface shared by the
// Naive Bayes Set and the CRFSet, letting the public API swap families.
type YProvider interface {
	// Relevant reports cached classifier-materialized Y(p).
	Relevant(a corpus.Aspect, p *corpus.Page) bool
	// YFunc returns the page-relevance function for an aspect.
	YFunc(a corpus.Aspect) func(*corpus.Page) bool
	// Has reports whether the aspect has a trained classifier.
	Has(a corpus.Aspect) bool
	// AccuracyOf measures an aspect's paragraph accuracy on pages
	// (0 for untrained aspects).
	AccuracyOf(a corpus.Aspect, pages []*corpus.Page) float64
}

var (
	_ YProvider = (*Set)(nil)
	_ YProvider = (*CRFSet)(nil)
)

// Has reports whether the aspect has a trained CRF.
func (s *CRFSet) Has(a corpus.Aspect) bool {
	_, ok := s.ByAspect[a]
	return ok
}

// AccuracyOf measures an aspect's paragraph accuracy on pages.
func (s *CRFSet) AccuracyOf(a corpus.Aspect, pages []*corpus.Page) float64 {
	c, ok := s.ByAspect[a]
	if !ok {
		return 0
	}
	return c.Accuracy(pages)
}

// TrainCRF fits a CRF for aspect a on the given pages (one training
// sequence per page, a paragraph is positive iff its generator label
// equals a). cfg zero value uses crf.DefaultTrainConfig. Returns nil if
// either class is absent from the training data.
func TrainCRF(a corpus.Aspect, pages []*corpus.Page, cfg crf.TrainConfig) *CRFClassifier {
	fm := crf.NewFeatureMap()
	var examples []crf.Example
	seen := [2]bool{}
	for _, p := range pages {
		if len(p.Paras) == 0 {
			continue
		}
		ex := crf.Example{
			Feats:  make([][]int, len(p.Paras)),
			Labels: make([]crf.Label, len(p.Paras)),
		}
		for i := range p.Paras {
			ex.Feats[i] = paraFeatures(fm, &p.Paras[i])
			if p.Paras[i].Aspect == a {
				ex.Labels[i] = 1
			}
			seen[ex.Labels[i]] = true
		}
		examples = append(examples, ex)
	}
	if !seen[0] || !seen[1] || fm.Len() == 0 {
		return nil
	}
	fm.Freeze()
	model, err := crf.Train(examples, fm.Len(), cfg)
	if err != nil {
		return nil
	}
	return &CRFClassifier{Aspect: a, model: model, feats: fm}
}

// paraFeatures extracts the sparse features of one paragraph: its
// deduplicated tokens (sorted for determinism). Unknown tokens map to -1
// after freezing and are dropped.
func paraFeatures(fm *crf.FeatureMap, para *corpus.Paragraph) []int {
	set := make(map[string]struct{}, len(para.Tokens))
	for _, t := range para.Tokens {
		set[t] = struct{}{}
	}
	toks := make([]string, 0, len(set))
	for t := range set {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	out := make([]int, 0, len(toks))
	for _, t := range toks {
		if id := fm.ID("t=" + t); id >= 0 {
			out = append(out, id)
		}
	}
	return out
}

// predictPage decodes the page's paragraph labels.
func (c *CRFClassifier) predictPage(p *corpus.Page) []crf.Label {
	seq := make([][]int, len(p.Paras))
	for i := range p.Paras {
		seq[i] = paraFeatures(c.feats, &p.Paras[i])
	}
	return c.model.Decode(seq)
}

// PageScore returns the fraction of paragraphs decoded relevant.
func (c *CRFClassifier) PageScore(p *corpus.Page) float64 {
	if len(p.Paras) == 0 {
		return 0
	}
	labels := c.predictPage(p)
	n := 0
	for _, l := range labels {
		if l == 1 {
			n++
		}
	}
	return float64(n) / float64(len(labels))
}

// PageRelevant materializes the binary Y(p) with the same threshold as the
// NB classifier.
func (c *CRFClassifier) PageRelevant(p *corpus.Page) bool {
	return c.PageScore(p) >= RelevanceThreshold
}

// Accuracy measures paragraph-level accuracy against generator labels.
func (c *CRFClassifier) Accuracy(pages []*corpus.Page) float64 {
	correct, total := 0, 0
	for _, p := range pages {
		if len(p.Paras) == 0 {
			continue
		}
		labels := c.predictPage(p)
		for i := range p.Paras {
			want := p.Paras[i].Aspect == c.Aspect
			got := labels[i] == 1
			if got == want {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// CRFSet mirrors Set for the CRF family: one classifier per aspect with a
// concurrent page-level Y cache.
type CRFSet struct {
	ByAspect map[corpus.Aspect]*CRFClassifier

	mu    sync.RWMutex
	cache map[cacheKey]bool
}

// TrainCRFSet trains a CRF per aspect. Aspects with degenerate training
// data are skipped, exactly like TrainSet. Per-aspect training runs on a
// bounded worker pool (GOMAXPROCS) — CRF training is seconds-scale per
// aspect, so a server paying it at boot gets the full core count.
func TrainCRFSet(aspects []corpus.Aspect, pages []*corpus.Page, cfg crf.TrainConfig) *CRFSet {
	return TrainCRFSetWorkers(aspects, pages, cfg, 0)
}

// TrainCRFSetWorkers is TrainCRFSet with an explicit worker bound: 0
// picks GOMAXPROCS, 1 trains serially. Value-neutral — aspects train
// independently, so every worker count yields identical classifiers.
func TrainCRFSetWorkers(aspects []corpus.Aspect, pages []*corpus.Page, cfg crf.TrainConfig, workers int) *CRFSet {
	cs := make([]*CRFClassifier, len(aspects))
	par.For(len(aspects), workers, func(i int) {
		cs[i] = TrainCRF(aspects[i], pages, cfg)
	})
	s := &CRFSet{
		ByAspect: make(map[corpus.Aspect]*CRFClassifier, len(aspects)),
		cache:    make(map[cacheKey]bool),
	}
	for i, a := range aspects {
		if cs[i] != nil {
			s.ByAspect[a] = cs[i]
		}
	}
	return s
}

// Relevant reports cached classifier-materialized Y(p). Panics for
// untrained aspects (programmer error).
func (s *CRFSet) Relevant(a corpus.Aspect, p *corpus.Page) bool {
	k := cacheKey{a: a, id: p.ID}
	s.mu.RLock()
	v, ok := s.cache[k]
	s.mu.RUnlock()
	if ok {
		return v
	}
	c, ok := s.ByAspect[a]
	if !ok {
		panic("classify: no CRF classifier for aspect " + string(a))
	}
	v = c.PageRelevant(p)
	s.mu.Lock()
	s.cache[k] = v
	s.mu.Unlock()
	return v
}

// YFunc returns the page-relevance function for an aspect.
func (s *CRFSet) YFunc(a corpus.Aspect) func(*corpus.Page) bool {
	return func(p *corpus.Page) bool { return s.Relevant(a, p) }
}
