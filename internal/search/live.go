package search

import (
	"math"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// The live generational engine: the frozen Index/Engine pair assumes a
// corpus fixed at build time, but the paper's workload is a harvester that
// feeds the very index it queries. LiveEngine keeps that machinery intact
// by composing it — new pages land in a small memtable segment (rebuilt
// serially per ingest batch), the memtable seals into an immutable segment
// (an ordinary Index, scored by the PR 1 sharded scorer verbatim), and a
// background compactor merges small adjacent segments into larger ones.
// Every query runs over a merged view: per-segment engines produce
// (global ordinal, score) pairs and MergeTopKAppend — the cluster
// scatter-gather merge — folds them into the global ranking, because a
// live engine is morally a local scatter-gather.
//
// Readers never lock. Each mutation publishes a fresh immutable view
// (segment list + snapshotted collection statistics + per-segment scoring
// engines) behind an atomic pointer; a query pins the view it loaded for
// its whole lifetime, so compaction can retire segments while searches
// still read them. Cache entries are keyed by the view epoch, making
// invalidation a free integer bump: stale entries simply stop matching
// and age out of the LRU.
//
// Differential parity is the contract: a live engine grown doc-by-doc —
// across any seal/compact schedule — ranks byte-identically to a frozen
// engine rebuilt from the final page set. Per-document scores depend only
// on per-doc term frequencies and document length (identical in any
// segment layout) and on collection totals (snapshotted globally per
// view), ties break on the global ingest ordinal (the rebuilt index's
// document ordinal), and every segment contributes its full local top-k,
// so the merged top-k equals the frozen top-k exactly.

// DefaultMemtableDocs is the seal threshold when LiveOptions.MemtableDocs
// is 0: small enough that the serial per-ingest memtable rebuild stays
// cheap, large enough that sealed segments amortize the merge fan-in.
const DefaultMemtableDocs = 128

// DefaultCompactFanIn is the compaction fan-in when LiveOptions.
// CompactFanIn is 0: merging 4 same-tier neighbors keeps the segment
// count at O(fanIn · log(n/memtable)) under steady ingestion.
const DefaultCompactFanIn = 4

// LiveOptions tunes the generational lifecycle of a LiveEngine. The zero
// value means "all defaults"; every field has an explicit opt-out.
type LiveOptions struct {
	// MemtableDocs is the memtable seal threshold in documents. 0 picks
	// DefaultMemtableDocs; values are clamped to ≥ 1 (1 seals every
	// document into its own segment — the compaction stress mode).
	MemtableDocs int
	// CompactFanIn is how many adjacent same-tier sealed segments the
	// background compactor merges at once. 0 picks DefaultCompactFanIn;
	// positive values are clamped to ≥ 2. Negative disables background
	// compaction; explicit Compact calls still merge with fan-in
	// |CompactFanIn| (-1 keeps the default fan-in) — the deterministic-
	// schedule mode parity tests drive.
	CompactFanIn int
	// IngestWorkers bounds the goroutines that pre-tokenize incoming
	// pages before the writer lock is taken. 0 picks GOMAXPROCS; 1
	// tokenizes serially.
	IngestWorkers int
	// TopK is the result-list size per query. 0 picks DefaultTopK.
	TopK int
	// BM25 switches scoring to Okapi BM25 (k1/b resolved like
	// Engine.WithBM25); the default is the paper's Dirichlet
	// query-likelihood model.
	BM25  bool
	K1, B float64
}

// withDefaults resolves zero fields to their defaults and clamps ranges.
func (o LiveOptions) withDefaults() LiveOptions {
	if o.MemtableDocs == 0 {
		o.MemtableDocs = DefaultMemtableDocs
	}
	if o.MemtableDocs < 1 {
		o.MemtableDocs = 1
	}
	if o.CompactFanIn == 0 {
		o.CompactFanIn = DefaultCompactFanIn
	}
	if o.CompactFanIn > 0 && o.CompactFanIn < 2 {
		o.CompactFanIn = 2
	}
	if o.IngestWorkers == 0 {
		o.IngestWorkers = runtime.GOMAXPROCS(0)
	}
	if o.IngestWorkers < 1 {
		o.IngestWorkers = 1
	}
	if o.TopK == 0 {
		o.TopK = DefaultTopK
	}
	if o.BM25 {
		if o.K1 <= 0 {
			o.K1 = DefaultBM25K1
		}
		// Unlike Engine.WithBM25, the zero value here means "default",
		// consistent with every other LiveOptions field.
		if o.B <= 0 || o.B > 1 {
			o.B = DefaultBM25B
		}
	}
	return o
}

// liveSegment is one immutable generation: an ordinary Index over a
// contiguous run of ingested pages plus the global ingest ordinal of its
// first document. Segments are never mutated once they enter a view;
// compaction replaces adjacent runs with a merged rebuild.
type liveSegment struct {
	idx  *Index
	base int64 // global ordinal of idx.Doc(0)
}

func (s *liveSegment) end() int64 { return s.base + int64(s.idx.NumDocs()) }

// liveStats is the per-view StatSource: collection totals are ints
// snapshotted at publish (the writer maintains them incrementally), while
// per-term frequencies are summed across the view's immutable segment
// indexes on demand — O(segments) map probes per query token, hoisted
// once per query by the scoring constants, instead of an O(vocabulary)
// stats rebuild per ingest.
type liveStats struct {
	segs      []*liveSegment
	numDocs   int
	totalToks int
	numTerms  int
}

func (st *liveStats) StatCollFreq(t textproc.Token) int {
	n := 0
	for _, s := range st.segs {
		n += s.idx.CollectionFreq(t)
	}
	return n
}

func (st *liveStats) StatDocFreq(t textproc.Token) int {
	n := 0
	for _, s := range st.segs {
		n += s.idx.DocFreq(t)
	}
	return n
}

func (st *liveStats) StatNumDocs() int     { return st.numDocs }
func (st *liveStats) StatTotalTokens() int { return st.totalToks }
func (st *liveStats) StatNumTerms() int    { return st.numTerms }

// liveView is one published epoch: the sealed segments plus (when
// non-empty) the memtable segment at the tail, each paired with an Engine
// that scores it against the view-global statistics and μ. A view is
// immutable after publish; readers load it atomically and use it lock-free
// for the whole query.
type liveView struct {
	epoch   uint64
	segs    []*liveSegment
	engines []*Engine // engines[i] scores segs[i] with the view's stats
	stats   *liveStats
	mu      float64
	memDocs int // docs still in the unsealed memtable segment
}

// pageAt maps a global ordinal back to its page via the segment bases
// (segments are few; scan from the tail, where the hot memtable lives).
func (v *liveView) pageAt(doc int64) *corpus.Page {
	for i := len(v.segs) - 1; i >= 0; i-- {
		if s := v.segs[i]; doc >= s.base {
			return s.idx.Doc(int(doc - s.base))
		}
	}
	return nil
}

// LiveEngine is the generational mutable counterpart of Engine: it absorbs
// pages while serving, and satisfies the same retrieval surface (it is a
// core.Retriever and AppendRetriever). The zero value is not usable;
// create with NewLiveEngine. Safe for concurrent use: any number of
// readers, any number of Add callers (writes serialize internally).
type LiveEngine struct {
	opts Options     // per-segment layout, scoring workers, cache size
	lo   LiveOptions // generational lifecycle

	view  atomic.Pointer[liveView]
	cache *queryCache

	// Writer state, all guarded by wmu; readers never touch it.
	wmu       sync.Mutex
	sealed    []*liveSegment // authoritative sealed list; views copy it
	memPages  []*corpus.Page
	termSeen  map[textproc.Token]struct{} // global vocabulary (terms never leave)
	numDocs   int
	totalToks int

	compactBusy   atomic.Bool // single-flights the background compactor
	compactions   atomic.Int64
	docsCompacted atomic.Int64
	epochBumps    atomic.Int64 // publishes == cache epoch-invalidations
}

// NewLiveEngine creates a live generational engine, optionally
// bootstrapped with an initial page set (indexed as one big sealed
// segment — the frozen-boot fast path, so a server restored from a store
// starts with frozen-index performance). opts tunes the segment index
// layout, scoring workers, and the epoch-keyed query cache exactly as it
// does for NewEngineOpts; lo tunes the generational lifecycle.
func NewLiveEngine(pages []*corpus.Page, opts Options, lo LiveOptions) *LiveEngine {
	opts = opts.withDefaults()
	lo = lo.withDefaults()
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	le := &LiveEngine{
		opts:     opts,
		lo:       lo,
		cache:    newQueryCache(cacheSize),
		termSeen: make(map[textproc.Token]struct{}),
	}
	var segs []*liveSegment
	if len(pages) > 0 {
		idx := BuildIndexOpts(pages, opts)
		segs = append(segs, &liveSegment{idx: idx})
		le.numDocs = idx.NumDocs()
		le.totalToks = idx.TotalTokens()
		idx.Terms(func(t textproc.Token, _, _ int) { le.termSeen[t] = struct{}{} })
	}
	le.sealed = segs
	le.view.Store(le.buildViewLocked())
	return le
}

// buildViewLocked assembles the next view from the writer state: snapshot
// the global statistics, derive μ exactly as NewEngine would for a frozen
// index with the same totals (AutoMu), and bind one scoring Engine per
// segment to the shared stats. The per-segment engines carry no cache —
// the LiveEngine's epoch-keyed cache fronts the whole merged view.
// Caller holds wmu (or is the constructor).
func (le *LiveEngine) buildViewLocked() *liveView {
	var epoch uint64
	if cur := le.view.Load(); cur != nil {
		epoch = cur.epoch + 1
	}
	memDocs := 0
	segs := make([]*liveSegment, 0, len(le.sealed)+1)
	segs = append(segs, le.sealed...)
	if len(le.memPages) > 0 {
		base := int64(0)
		if n := len(le.sealed); n > 0 {
			base = le.sealed[n-1].end()
		}
		memSeg := &liveSegment{idx: buildIndexSerial(slices.Clone(le.memPages)), base: base}
		segs = append(segs, memSeg)
		memDocs = len(le.memPages)
	}
	st := &liveStats{
		segs:      segs,
		numDocs:   le.numDocs,
		totalToks: le.totalToks,
		numTerms:  len(le.termSeen),
	}
	v := &liveView{
		epoch:   epoch,
		segs:    segs,
		engines: make([]*Engine, len(segs)),
		stats:   st,
		mu:      AutoMu(st.numDocs, st.totalToks),
		memDocs: memDocs,
	}
	for i, s := range segs {
		e := &Engine{
			idx:     s.idx,
			mu:      v.mu,
			topK:    le.lo.TopK,
			workers: le.opts.ScoreWorkers,
			stats:   st,
		}
		if le.lo.BM25 {
			e.bm25, e.k1, e.b = true, le.lo.K1, le.lo.B
		}
		v.engines[i] = e
	}
	return v
}

// publishLocked stores the next view and counts the epoch bump (each bump
// implicitly invalidates every cached result of the previous epoch).
// Caller holds wmu.
func (le *LiveEngine) publishLocked() {
	le.view.Store(le.buildViewLocked())
	le.epochBumps.Add(1)
}

// buildIndexSerial is the memtable build: a single-shard index assembled
// on the calling goroutine, producing exactly the observable state
// BuildIndexOpts would for Shards=1 (postings doc-ordinal-ascending,
// identical frequencies and totals) without a fan-out that would dwarf
// the counting at memtable sizes.
func buildIndexSerial(pages []*corpus.Page) *Index {
	idx := &Index{
		docs:   pages,
		docLen: make([]int, len(pages)),
		shards: make([]indexShard, 1),
	}
	sh := &idx.shards[0]
	sh.postings = make(map[textproc.Token][]posting)
	sh.collFreq = make(map[textproc.Token]int)
	tf := make(map[textproc.Token]int32)
	for di, p := range pages {
		toks := p.Tokens()
		idx.docLen[di] = len(toks)
		idx.totalToks += len(toks)
		clear(tf)
		for _, t := range toks {
			tf[t]++
		}
		for t, n := range tf {
			sh.postings[t] = append(sh.postings[t], posting{doc: int32(di), tf: n})
			sh.collFreq[t] += int(n)
		}
	}
	sh.totalToks = idx.totalToks
	idx.numTerms = len(sh.postings)
	return idx
}

// Add ingests pages in order and publishes a new epoch. The memtable is
// rebuilt once per call (batching amortizes the serial rebuild), seals
// automatically at MemtableDocs, and the background compactor is kicked
// when a merge candidate appears. Concurrent Add calls serialize; their
// relative order is the ingest order parity is defined over.
func (le *LiveEngine) Add(pages ...*corpus.Page) {
	if len(pages) == 0 {
		return
	}
	le.pretokenize(pages)
	le.wmu.Lock()
	for _, p := range pages {
		toks := p.Tokens()
		le.totalToks += len(toks)
		for _, t := range toks {
			le.termSeen[t] = struct{}{}
		}
	}
	le.numDocs += len(pages)
	le.memPages = append(le.memPages, pages...)
	for len(le.memPages) >= le.lo.MemtableDocs {
		le.sealLocked(le.lo.MemtableDocs)
	}
	le.publishLocked()
	le.wmu.Unlock()
	le.maybeCompact()
}

// sealLocked turns the first n memtable pages into a sealed segment.
// Batched adds seal one MemtableDocs-sized segment at a time so segment
// sizes (and therefore compaction tiers) do not depend on how ingestion
// happened to be batched. Caller holds wmu.
func (le *LiveEngine) sealLocked(n int) {
	if n > len(le.memPages) {
		n = len(le.memPages)
	}
	if n <= 0 {
		return
	}
	base := int64(0)
	if ns := len(le.sealed); ns > 0 {
		base = le.sealed[ns-1].end()
	}
	le.sealed = append(le.sealed, &liveSegment{
		idx:  buildIndexSerial(slices.Clone(le.memPages[:n])),
		base: base,
	})
	le.memPages = append(le.memPages[:0], le.memPages[n:]...)
}

// Seal forces the whole memtable (if any) into a sealed segment and
// publishes a new epoch — the explicit segment-boundary hook parity tests
// drive.
func (le *LiveEngine) Seal() {
	le.wmu.Lock()
	if len(le.memPages) > 0 {
		le.sealLocked(len(le.memPages))
		le.publishLocked()
	}
	le.wmu.Unlock()
	le.maybeCompact()
}

// pretokenize forces Page.Tokens on every incoming page outside the
// writer lock, fanned over IngestWorkers, so the serial rebuild under the
// lock only reads cached token slices.
func (le *LiveEngine) pretokenize(pages []*corpus.Page) {
	w := le.lo.IngestWorkers
	if w > len(pages) {
		w = len(pages)
	}
	if w <= 1 {
		for _, p := range pages {
			p.Tokens()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(pages) {
					return
				}
				pages[n].Tokens()
			}
		}()
	}
	wg.Wait()
}

// fanIn resolves the effective compaction fan-in: CompactFanIn's
// magnitude, with the default restored when a bare -1 asked only to
// disable the background compactor.
func (le *LiveEngine) fanIn() int {
	f := le.lo.CompactFanIn
	if f < 0 {
		f = -f
	}
	if f < 2 {
		f = DefaultCompactFanIn
	}
	return f
}

// tier buckets a segment size for compaction: sizes in the same
// power-of-fanIn band of the memtable size share a tier, so steady
// ingestion keeps O(fanIn · log n) segments.
func (le *LiveEngine) tier(n int) int {
	f := le.fanIn()
	t := 0
	for band := le.lo.MemtableDocs; n > band; band *= f {
		t++
	}
	return t
}

// compactRunLocked picks the oldest run of CompactFanIn adjacent sealed
// segments sharing a size tier. Adjacency is load-bearing: merging
// neighbors keeps every segment a contiguous global-ordinal range, which
// is what makes compaction invisible to the ranking. Returns lo == hi
// when nothing needs compacting. Caller holds wmu.
func (le *LiveEngine) compactRunLocked() (lo, hi int) {
	f := le.fanIn()
	runStart := 0
	for i := 1; i <= len(le.sealed); i++ {
		same := i < len(le.sealed) &&
			le.tier(le.sealed[i].idx.NumDocs()) == le.tier(le.sealed[runStart].idx.NumDocs())
		if !same {
			runStart = i
			continue
		}
		if i-runStart+1 >= f {
			return runStart, i + 1
		}
	}
	return 0, 0
}

// maybeCompact kicks the background compactor if it is idle. The
// goroutine loops until no candidate remains, so cascading merges (fanIn
// small segments forming one that completes a higher-tier run) drain
// without waiting for the next ingest.
func (le *LiveEngine) maybeCompact() {
	if le.lo.CompactFanIn < 2 {
		return
	}
	if !le.compactBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer le.compactBusy.Store(false)
		for le.compactOnce() {
		}
	}()
}

// compactOnce merges one candidate run and publishes the spliced view.
// The expensive rebuild happens off the writer lock — run segments are
// immutable, seals only append, and removals re-verify the run by
// identity before splicing — so readers and ingest never wait on a
// compaction. Returns whether a merge happened.
func (le *LiveEngine) compactOnce() bool {
	le.wmu.Lock()
	lo, hi := le.compactRunLocked()
	if lo == hi {
		le.wmu.Unlock()
		return false
	}
	run := make([]*liveSegment, hi-lo)
	copy(run, le.sealed[lo:hi])
	le.wmu.Unlock()

	nDocs := 0
	for _, s := range run {
		nDocs += s.idx.NumDocs()
	}
	pages := make([]*corpus.Page, 0, nDocs)
	for _, s := range run {
		for i := 0; i < s.idx.NumDocs(); i++ {
			pages = append(pages, s.idx.Doc(i))
		}
	}
	merged := &liveSegment{idx: BuildIndexOpts(pages, le.opts), base: run[0].base}

	le.wmu.Lock()
	if lo >= len(le.sealed) || hi > len(le.sealed) ||
		le.sealed[lo] != run[0] || le.sealed[hi-1] != run[len(run)-1] {
		// Another compactor (explicit Compact racing the background one)
		// already retired part of the run; drop this merge.
		le.wmu.Unlock()
		return false
	}
	spliced := make([]*liveSegment, 0, len(le.sealed)-len(run)+1)
	spliced = append(spliced, le.sealed[:lo]...)
	spliced = append(spliced, merged)
	spliced = append(spliced, le.sealed[hi:]...)
	le.sealed = spliced
	le.publishLocked()
	le.wmu.Unlock()
	le.compactions.Add(1)
	le.docsCompacted.Add(int64(nDocs))
	return true
}

// Compact synchronously drains every compactable run — the deterministic
// hook for explicit compaction schedules (pair it with CompactFanIn < 0
// to keep the background compactor out of the way).
func (le *LiveEngine) Compact() {
	for le.compactOnce() {
	}
}

// Quiesce blocks until no compaction is running and no compactable run
// remains — the deterministic point differential tests compare at. With
// background compaction disabled there is nothing to wait for.
func (le *LiveEngine) Quiesce() {
	if le.lo.CompactFanIn < 2 {
		return
	}
	for {
		if le.compactBusy.Load() {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		le.wmu.Lock()
		lo, hi := le.compactRunLocked()
		le.wmu.Unlock()
		if lo == hi {
			return
		}
		// An idle compactor with work left (e.g. its kick raced a seal):
		// re-kick and wait for it to drain.
		le.maybeCompact()
	}
}

// liveScratch is the pooled per-query merge state of one multi-segment
// search: the hoisted per-view scoring constants, the flat ranked buffer
// every segment appends into, per-segment end offsets, the list headers
// handed to MergeTopKAppend, and the merged top-k.
type liveScratch struct {
	consts []float64
	rd     []RankedDoc
	ends   []int
	lists  [][]RankedDoc
	merged []RankedDoc
}

var liveScratchPool = sync.Pool{New: func() any { return new(liveScratch) }}

// Search returns the top-k pages for the query over the current view.
func (le *LiveEngine) Search(query []textproc.Token) []Result {
	return le.SearchAppend(nil, query)
}

// SearchAppend is Search with a caller-provided result buffer. With a
// reused dst a cache hit costs zero allocations regardless of the segment
// count — the multi-segment merge only runs on misses.
func (le *LiveEngine) SearchAppend(dst []Result, query []textproc.Token) []Result {
	return le.SearchTopKAppend(dst, 0, query)
}

// SearchTopKAppend is SearchAppend with an explicit result-list size
// (k ≤ 0 uses the configured TopK) — the per-request override the serving
// layer passes through without re-deriving engines.
func (le *LiveEngine) SearchTopKAppend(dst []Result, k int, query []textproc.Token) []Result {
	if len(query) == 0 {
		return dst
	}
	if k <= 0 {
		k = le.lo.TopK
	}
	v := le.view.Load()
	if le.cache == nil {
		return le.searchViewAppend(dst, v, k, query)
	}
	kb := cacheKeyPool.Get().(*cacheKeyBuf)
	key := le.appendLiveCacheKey(kb.b[:0], v.epoch, k, query)
	out, hit := le.cache.getAppend(key, dst)
	if !hit {
		start := len(dst)
		out = le.searchViewAppend(dst, v, k, query)
		// The cache owns one canonical copy; the caller keeps mutating
		// its own slice freely (the pre-cache contract).
		var canonical []Result
		if n := len(out) - start; n > 0 {
			canonical = make([]Result, n)
			copy(canonical, out[start:])
		}
		le.cache.put(key, canonical)
	}
	kb.b = key
	cacheKeyPool.Put(kb)
	return out
}

// appendLiveCacheKey is the engine cache key prefixed with the view
// epoch: a publish bumps the epoch, so every stale entry stops matching
// instantly — invalidation is one integer, not a flush — and ages out of
// the LRU.
func (le *LiveEngine) appendLiveCacheKey(dst []byte, epoch uint64, k int, query []textproc.Token) []byte {
	dst = strconv.AppendUint(dst, epoch, 10)
	if le.lo.BM25 {
		dst = append(dst, 'b')
	} else {
		dst = append(dst, 'd')
	}
	dst = strconv.AppendInt(dst, int64(k), 10)
	for _, t := range query {
		dst = append(dst, 0x1f)
		dst = append(dst, t...)
	}
	return dst
}

// searchViewAppend scores the query over every segment of the view and
// merges the per-segment top-k into the global ranking — a local
// scatter-gather. MergeTopKAppend breaks ties on the lower global ordinal
// (ingest order), which is exactly the frozen engine's document-order
// tie-break, and each segment returns its full local top-k, so the global
// top-k is contained in the union and the merge is exact.
func (le *LiveEngine) searchViewAppend(dst []Result, v *liveView, k int, query []textproc.Token) []Result {
	switch len(v.segs) {
	case 0:
		return dst
	case 1:
		// Single segment: local ordinals are the global ordinals; skip
		// the merge entirely (the frozen-boot steady state).
		eng := v.engines[0]
		if k != eng.topK {
			cp := *eng
			cp.topK = k
			eng = &cp
		}
		return eng.searchShardedAppend(dst, query)
	}
	sc := liveScratchPool.Get().(*liveScratch)

	// The scoring constants depend only on the view-global statistics, so
	// hoist them once per query instead of once per segment — liveStats
	// probes are O(segments) each, and recomputing them per segment would
	// make the per-query stat cost quadratic in the segment count.
	consts := sc.consts[:0]
	var pC, idf []float64
	var avgdl float64
	if le.lo.BM25 {
		avgdl = float64(v.stats.totalToks) / math.Max(1, float64(v.stats.numDocs))
		for _, t := range query {
			consts = append(consts, bm25IDF(float64(v.stats.StatDocFreq(t)), float64(v.stats.numDocs)))
		}
		idf = consts
	} else {
		for _, t := range query {
			consts = append(consts, CollectionProb(v.stats.StatCollFreq(t), v.stats.totalToks, v.stats.numTerms))
		}
		pC = consts
	}
	sc.consts = consts

	rd := sc.rd[:0]
	ends := sc.ends[:0]
	for i, eng := range v.engines {
		ssc := searchScratchPool.Get().(*searchScratch)
		if cands, ok := eng.searchCandsIn(ssc, query, k, pC, idf, avgdl); ok {
			slices.SortFunc(cands, compareCand)
			kk := k
			if kk > len(cands) {
				kk = len(cands)
			}
			for _, c := range cands[:kk] {
				rd = append(rd, RankedDoc{Doc: v.segs[i].base + int64(c.doc), Score: c.score})
			}
		}
		releaseSearchScratch(ssc)
		ends = append(ends, len(rd))
	}
	lists := sc.lists[:0]
	lo := 0
	for _, e := range ends {
		lists = append(lists, rd[lo:e])
		lo = e
	}
	merged := MergeTopKAppend(sc.merged[:0], k, lists)
	for _, m := range merged {
		dst = append(dst, Result{Page: v.pageAt(m.Doc), Score: m.Score})
	}
	sc.rd, sc.ends, sc.merged = rd, ends, merged
	for i := range lists {
		lists[i] = nil
	}
	sc.lists = lists
	liveScratchPool.Put(sc)
	return dst
}

// SearchWithSeed runs Search on seed ∥ query (the paper appends the seed
// query to every subsequent query to stay focused on the target entity).
func (le *LiveEngine) SearchWithSeed(seed, query []textproc.Token) []Result {
	return le.SearchWithSeedAppend(nil, seed, query)
}

// SearchWithSeedAppend is SearchWithSeed with a caller-provided buffer;
// the concatenation lives in pooled scratch.
func (le *LiveEngine) SearchWithSeedAppend(dst []Result, seed, query []textproc.Token) []Result {
	return le.SearchWithSeedTopKAppend(dst, 0, seed, query)
}

// SearchWithSeedTopKAppend is SearchWithSeedAppend with an explicit
// result-list size (k ≤ 0 uses the configured TopK).
func (le *LiveEngine) SearchWithSeedTopKAppend(dst []Result, k int, seed, query []textproc.Token) []Result {
	sb := seedQueryPool.Get().(*seedQueryBuf)
	combined := append(append(sb.toks[:0], seed...), query...)
	dst = le.SearchTopKAppend(dst, k, combined)
	sb.toks = combined
	seedQueryPool.Put(sb)
	return dst
}

// QueryLikelihood scores one page against a query with the current view's
// smoothing — the same formula, μ derivation, and collection model as the
// frozen engine's, so graph edge weights match a frozen rebuild too.
func (le *LiveEngine) QueryLikelihood(p *corpus.Page, query []textproc.Token) float64 {
	if len(query) == 0 {
		return math.Inf(-1)
	}
	v := le.view.Load()
	toks := p.Tokens()
	tf := make(map[textproc.Token]int, len(query))
	for _, t := range toks {
		tf[t]++ // full histogram; queries are short so this is fine
	}
	s := 0.0
	for _, t := range query {
		pC := CollectionProb(v.stats.StatCollFreq(t), v.stats.StatTotalTokens(), v.stats.StatNumTerms())
		s += DirichletTermScore(tf[t], len(toks), v.mu, pC)
	}
	return s
}

// TopK returns the configured result-list size.
func (le *LiveEngine) TopK() int { return le.lo.TopK }

// Mu returns the current view's Dirichlet smoothing parameter (it tracks
// the growing collection exactly as NewEngine's AutoMu would).
func (le *LiveEngine) Mu() float64 { return le.view.Load().mu }

// IsBM25 reports whether the engine ranks with BM25.
func (le *LiveEngine) IsBM25() bool { return le.lo.BM25 }

// Epoch returns the current view epoch; every ingest, seal, and
// compaction publish bumps it.
func (le *LiveEngine) Epoch() uint64 { return le.view.Load().epoch }

// NumDocs returns the number of ingested documents in the current view.
func (le *LiveEngine) NumDocs() int { return le.view.Load().stats.numDocs }

// NumTerms returns the global vocabulary size of the current view.
func (le *LiveEngine) NumTerms() int { return le.view.Load().stats.numTerms }

// TotalTokens returns the collection length in tokens.
func (le *LiveEngine) TotalTokens() int { return le.view.Load().stats.totalToks }

// CollectionFreq sums the token's collection frequency across the current
// view's segments.
func (le *LiveEngine) CollectionFreq(t textproc.Token) int {
	return le.view.Load().stats.StatCollFreq(t)
}

// DocFreq sums the token's document frequency across the current view's
// segments.
func (le *LiveEngine) DocFreq(t textproc.Token) int {
	return le.view.Load().stats.StatDocFreq(t)
}

// Pages returns the ingested pages in global-ordinal (ingest) order —
// exactly the page set a frozen BuildIndex rebuild would index, i.e. the
// right-hand side of the parity contract.
func (le *LiveEngine) Pages() []*corpus.Page {
	v := le.view.Load()
	out := make([]*corpus.Page, 0, v.stats.numDocs)
	for _, s := range v.segs {
		for i := 0; i < s.idx.NumDocs(); i++ {
			out = append(out, s.idx.Doc(i))
		}
	}
	return out
}

// CacheStats reports the epoch-keyed query cache's lifetime hit and miss
// counts (zeroes when the cache is disabled).
func (le *LiveEngine) CacheStats() (hits, misses uint64) {
	if le.cache == nil {
		return 0, 0
	}
	return le.cache.stats()
}

// LiveMetrics is the ingest-side gauge snapshot the serving layer exports
// on /api/v1/metrics.
type LiveMetrics struct {
	Epoch              uint64 `json:"epoch"`
	Segments           int    `json:"segments"`
	MemtableDocs       int    `json:"memtableDocs"`
	NumDocs            int    `json:"numDocs"`
	Compactions        int64  `json:"compactions"`
	DocsCompacted      int64  `json:"docsCompacted"`
	EpochInvalidations int64  `json:"epochInvalidations"`
}

// Metrics snapshots the engine's generational gauges.
func (le *LiveEngine) Metrics() LiveMetrics {
	v := le.view.Load()
	return LiveMetrics{
		Epoch:              v.epoch,
		Segments:           len(v.segs),
		MemtableDocs:       v.memDocs,
		NumDocs:            v.stats.numDocs,
		Compactions:        le.compactions.Load(),
		DocsCompacted:      le.docsCompacted.Load(),
		EpochInvalidations: le.epochBumps.Load(),
	}
}
