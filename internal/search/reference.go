package search

import (
	"sort"

	"l2q/internal/textproc"
)

// SearchReference is the retained pre-sharding scoring path: gather the
// candidate union into hash maps, score every candidate, and fully sort.
// It is deliberately kept verbatim (modulo the posting lookup going through
// the shard table) as the ground truth the sharded/parallel/cached Search
// is differentially tested against, and as the baseline the engine
// benchmarks compare throughput with. It never consults the query cache.
func (e *Engine) SearchReference(query []textproc.Token) []Result {
	if len(query) == 0 {
		return nil
	}
	if e.bm25 {
		return e.searchBM25Reference(query)
	}
	// Candidate set: union of postings.
	tfs := make(map[int32]map[textproc.Token]int32)
	for _, t := range query {
		for _, p := range e.idx.postingsFor(t) {
			m := tfs[p.doc]
			if m == nil {
				m = make(map[textproc.Token]int32, len(query))
				tfs[p.doc] = m
			}
			m[t] = p.tf
		}
	}
	if len(tfs) == 0 {
		return nil
	}
	cands := make([]cand, 0, len(tfs))
	for doc, m := range tfs {
		dl := e.idx.docLen[doc]
		s := 0.0
		for _, t := range query {
			s += DirichletTermScore(int(m[t]), dl, e.mu, e.collProb(t))
		}
		cands = append(cands, cand{doc: doc, score: s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].doc < cands[j].doc
	})
	k := e.topK
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Result, 0, k)
	for _, c := range cands[:k] {
		out = append(out, Result{Page: e.idx.docs[c.doc], Score: c.score})
	}
	return out
}

// searchBM25Reference mirrors SearchReference with BM25 scoring.
func (e *Engine) searchBM25Reference(query []textproc.Token) []Result {
	if len(query) == 0 {
		return nil
	}
	avgdl := e.avgDocLen()
	scores := make(map[int32]float64)
	for _, t := range query {
		idf := e.idf(t)
		for _, p := range e.idx.postingsFor(t) {
			dl := float64(e.idx.docLen[p.doc])
			tf := float64(p.tf)
			scores[p.doc] += idf * (tf * (e.k1 + 1)) / (tf + e.k1*(1-e.b+e.b*dl/avgdl))
		}
	}
	if len(scores) == 0 {
		return nil
	}
	cands := make([]cand, 0, len(scores))
	for doc, s := range scores {
		cands = append(cands, cand{doc: doc, score: s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].doc < cands[j].doc
	})
	k := e.topK
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Result, 0, k)
	for _, c := range cands[:k] {
		out = append(out, Result{Page: e.idx.docs[c.doc], Score: c.score})
	}
	return out
}
