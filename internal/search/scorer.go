package search

import (
	"slices"
	"sort"
	"sync"

	"l2q/internal/textproc"
)

// minPostingsPerWorker keeps the scorer from spawning goroutines for tiny
// candidate sets, where handoff costs more than the scoring.
const minPostingsPerWorker = 512

// cand is one scored candidate document.
type cand struct {
	doc   int32
	score float64
}

// betterCand reports whether a ranks strictly above b: higher score, ties
// broken by lower document ordinal (corpus page order) — the same total
// order the reference path sorts by.
func betterCand(a, b cand) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.doc < b.doc
}

// compareCand adapts betterCand to the slices.SortFunc contract. Document
// ordinals are unique within one search (workers partition the ordinal
// space), so this is a total order and the sort is deterministic.
func compareCand(a, b cand) int {
	switch {
	case betterCand(a, b):
		return -1
	case betterCand(b, a):
		return 1
	}
	return 0
}

// topKHeap keeps the K best elements seen so far in O(log K) per push,
// under the strict "ranks above" order better. The root is the worst kept
// element, so a full heap rejects most pushes with a single comparison.
// Generic so the scorer (cand) and the cluster merge (RankedDoc) share one
// heap; better is always a top-level func, so no closure is allocated.
type topKHeap[T any] struct {
	k      int
	better func(a, b T) bool
	h      []T
}

func (t *topKHeap[T]) push(c T) {
	if t.k <= 0 {
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, c)
		i := len(t.h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !t.better(t.h[p], t.h[i]) {
				break
			}
			t.h[p], t.h[i] = t.h[i], t.h[p]
			i = p
		}
		return
	}
	if !t.better(c, t.h[0]) {
		return
	}
	t.h[0] = c
	i := 0
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && t.better(t.h[w], t.h[l]) {
			w = l
		}
		if r < n && t.better(t.h[w], t.h[r]) {
			w = r
		}
		if w == i {
			return
		}
		t.h[i], t.h[w] = t.h[w], t.h[i]
		i = w
	}
}

// dirichletScore sums the per-term Dirichlet scores in query-position
// order — the exact summation order of the reference path, so the float64
// result is bit-identical to it.
func dirichletScore(tfv []int32, dl int, mu float64, pC []float64) float64 {
	s := 0.0
	for i, pc := range pC {
		s += DirichletTermScore(int(tfv[i]), dl, mu, pc)
	}
	return s
}

// bm25Score mirrors the reference BM25 accumulation: terms contribute in
// query-position order, absent terms are skipped (they contributed nothing
// in the reference's postings-driven accumulation either).
func bm25Score(tfv []int32, dl int, idf []float64, avgdl, k1, b float64) float64 {
	s := 0.0
	fdl := float64(dl)
	for i, f := range idf {
		if tfv[i] == 0 {
			continue
		}
		tf := float64(tfv[i])
		s += f * (tf * (k1 + 1)) / (tf + k1*(1-b+b*fdl/avgdl))
	}
	return s
}

// workerScratch is one scoring worker's reusable state: posting-list merge
// cursors, the per-candidate term-frequency vector, and the top-K heap's
// backing array. None of it holds pointers, so pooling retains nothing.
type workerScratch struct {
	cursors []int
	tfv     []int32
	heap    []cand
}

// searchScratch is the pooled per-call working state of one sharded
// search: posting-list headers, the per-position scoring constants (p(t|C)
// or idf), the per-worker scratch, and the merged-candidate buffer. One
// scratch serves one searchShardedAppend call, so a steady-state search
// allocates nothing beyond results the caller keeps (and on cached
// engines, the canonical copy the cache takes).
type searchScratch struct {
	lists  [][]posting
	consts []float64
	work   []workerScratch
	merged []cand
}

var searchScratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// searchShardedAppend is the engine's scoring path: posting lists come
// from the token-hash shards, candidate documents stream out of a k-way
// merge over the (doc-ordinal-sorted) lists, each candidate is scored in
// query order, and per-worker top-K heaps replace the reference's full
// sort. Workers partition the document-ordinal space, so their candidate
// sets are disjoint and the merged ranking equals the reference's. The
// top-k results are appended to dst.
func (e *Engine) searchShardedAppend(dst []Result, query []textproc.Token) []Result {
	k := e.topK
	if k < 0 {
		k = 0
	}
	sc, cands := e.searchCands(query, k)
	if sc == nil {
		return dst
	}
	dst = e.appendFinish(dst, cands, k)
	releaseSearchScratch(sc)
	return dst
}

// SearchRankedAppend scores the query and appends the engine's top-k as
// (global ordinal, score) pairs, offsetting local document ordinals by
// base — the exchange form MergeTopKAppend consumes, shared by cluster
// scatter-gather and the live engine's segment merge. k ≤ 0 uses the
// engine's TopK. The query cache is bypassed (callers that want one layer
// their own, keyed to their own lifecycle); with a reused dst the call
// allocates nothing. Safe for concurrent use.
func (e *Engine) SearchRankedAppend(dst []RankedDoc, base int64, k int, query []textproc.Token) []RankedDoc {
	if len(query) == 0 {
		return dst
	}
	if k <= 0 {
		k = e.topK
	}
	if k < 0 {
		k = 0
	}
	sc, cands := e.searchCands(query, k)
	if sc == nil {
		return dst
	}
	slices.SortFunc(cands, compareCand)
	if k > len(cands) {
		k = len(cands)
	}
	for _, c := range cands[:k] {
		dst = append(dst, RankedDoc{Doc: base + int64(c.doc), Score: c.score})
	}
	releaseSearchScratch(sc)
	return dst
}

// searchCands runs the sharded scoring fan-out and returns the pooled
// scratch together with the unsorted surviving candidates (the union of
// the per-worker top-k heaps). A nil scratch means the query matched no
// postings; otherwise the candidates alias the scratch and the caller
// must releaseSearchScratch once done with them.
func (e *Engine) searchCands(query []textproc.Token, k int) (*searchScratch, []cand) {
	sc := searchScratchPool.Get().(*searchScratch)

	// Per-position scoring constants, hoisted out of the per-document
	// loop (the reference recomputes them per candidate; the values are
	// identical, so hoisting is ranking-neutral).
	consts := sc.consts[:0]
	var pC, idf []float64
	var avgdl float64
	if e.bm25 {
		avgdl = e.avgDocLen()
		for _, t := range query {
			consts = append(consts, e.idf(t))
		}
		idf = consts
	} else {
		for _, t := range query {
			consts = append(consts, e.collProb(t))
		}
		pC = consts
	}
	sc.consts = consts

	cands, ok := e.searchCandsIn(sc, query, k, pC, idf, avgdl)
	if !ok {
		releaseSearchScratch(sc)
		return nil, nil
	}
	return sc, cands
}

// searchCandsIn is searchCands with the scoring constants supplied by the
// caller — the live engine hoists them once per query across all of a
// view's segments (they depend only on the collection statistics, never
// on the segment). Returns ok=false when the query matched no postings;
// the caller still owns sc either way.
func (e *Engine) searchCandsIn(sc *searchScratch, query []textproc.Token, k int, pC, idf []float64, avgdl float64) ([]cand, bool) {
	lists := sc.lists[:0]
	total := 0
	for _, t := range query {
		pl := e.idx.postingsFor(t)
		lists = append(lists, pl)
		total += len(pl)
	}
	sc.lists = lists
	if total == 0 {
		return nil, false
	}

	workers := e.workers
	if maxW := total / minPostingsPerWorker; workers > maxW+1 {
		workers = maxW + 1
	}
	nDocs := e.idx.NumDocs()
	if workers > nDocs {
		workers = nDocs
	}
	if workers < 1 {
		workers = 1
	}
	if cap(sc.work) < workers {
		sc.work = make([]workerScratch, workers)
	}
	work := sc.work[:workers]
	sc.work = work

	if workers == 1 {
		e.scoreRange(lists, 0, int32(nDocs), pC, idf, avgdl, &work[0], k)
		return work[0].heap, true
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int32(nDocs * w / workers)
		hi := int32(nDocs * (w + 1) / workers)
		wg.Add(1)
		go func(w int, lo, hi int32) {
			defer wg.Done()
			e.scoreRange(lists, lo, hi, pC, idf, avgdl, &work[w], k)
		}(w, lo, hi)
	}
	wg.Wait()
	merged := sc.merged[:0]
	for w := range work {
		merged = append(merged, work[w].heap...)
	}
	sc.merged = merged
	return merged, true
}

// releaseSearchScratch drops the posting-list references (they alias the
// index; no reason to pin them from the pool), truncates the remaining
// buffers — their backing arrays are pool-owned scratch holding only
// value-typed elements, so keeping the capacity is the point — and
// returns sc to the pool.
func releaseSearchScratch(sc *searchScratch) {
	for i := range sc.lists {
		sc.lists[i] = nil
	}
	sc.consts = sc.consts[:0]
	sc.work = sc.work[:0]
	sc.merged = sc.merged[:0]
	searchScratchPool.Put(sc)
}

// scoreRange merges the posting lists over document ordinals [lo, hi),
// scoring every candidate in that range into the worker's heap (left in
// w.heap). Lists are sorted by ordinal, so a cursor per list and a linear
// min-scan suffice (queries are a handful of tokens).
func (e *Engine) scoreRange(lists [][]posting, lo, hi int32, pC, idf []float64, avgdl float64, w *workerScratch, k int) {
	if cap(w.cursors) < len(lists) {
		w.cursors = make([]int, len(lists))
		w.tfv = make([]int32, len(lists))
	}
	cursors := w.cursors[:len(lists)]
	tfv := w.tfv[:len(lists)]
	for i, pl := range lists {
		cursors[i] = sort.Search(len(pl), func(j int) bool { return pl[j].doc >= lo })
	}
	h := topKHeap[cand]{k: k, better: betterCand, h: w.heap[:0]}
	for {
		minDoc := hi
		for i, pl := range lists {
			if c := cursors[i]; c < len(pl) && pl[c].doc < minDoc {
				minDoc = pl[c].doc
			}
		}
		if minDoc >= hi {
			w.heap = h.h
			return
		}
		for i, pl := range lists {
			if c := cursors[i]; c < len(pl) && pl[c].doc == minDoc {
				tfv[i] = pl[c].tf
				cursors[i] = c + 1
			} else {
				tfv[i] = 0
			}
		}
		dl := e.idx.docLen[minDoc]
		var s float64
		if e.bm25 {
			s = bm25Score(tfv, dl, idf, avgdl, e.k1, e.b)
		} else {
			s = dirichletScore(tfv, dl, e.mu, pC)
		}
		h.push(cand{doc: minDoc, score: s})
	}
}

// appendFinish sorts the surviving candidates by the reference order and
// appends the top-k materialized Results to dst. slices.SortFunc (unlike
// sort.Slice) does not allocate.
func (e *Engine) appendFinish(dst []Result, cands []cand, k int) []Result {
	slices.SortFunc(cands, compareCand)
	if k > len(cands) {
		k = len(cands)
	}
	for _, c := range cands[:k] {
		dst = append(dst, Result{Page: e.idx.docs[c.doc], Score: c.score})
	}
	return dst
}
