package search

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
	"sync"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// Distributed retrieval: the corpus is doc-partitioned over N nodes via a
// consistent-hash ring, each node scores its partitions locally, and a
// coordinator merges the per-node top-K lists into the global ranking.
// Scoring is corpus-stat-dependent (p(t|C), idf, avgdl all read collection
// totals), so per-partition engines are only comparable after the
// coordinator distributes the global CollectionStats — with that override
// in place, every per-term score a partition computes is bit-identical to
// what the single-node engine computes for the same document, and the
// merged ranking equals the single-node ranking exactly (partitions are
// disjoint, ties break on the global document ordinal, and each partition
// returns its local top-K so the global top-K is contained in the union).

// DefaultVNodes is the ring's virtual-node multiplier: each node owns this
// many points on the hash circle so partition sizes even out.
const DefaultVNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int32
}

// Ring is the deterministic doc-partitioning map of a cluster: consistent
// hashing over FNV-1a (never maphash, whose seed is process-local — every
// process in the cluster must agree on the layout), with vnodes virtual
// points per node. Partitions coincide with nodes: document d belongs to
// partition Partition(d), whose primary is the node of the same ordinal
// and whose replicas are the next nodes clockwise on the node ring. The
// zero value is not usable; create with NewRing. A Ring is immutable and
// safe for concurrent use.
type Ring struct {
	nodes    int
	replicas int
	points   []ringPoint
}

// NewRing builds the partition map for a cluster of n nodes with the given
// replication factor (clamped to [1, n]) and virtual-node multiplier
// (≤ 0 = DefaultVNodes). Two rings built with equal parameters agree on
// every placement, in any process.
func NewRing(n, replicas, vnodes int) *Ring {
	if n < 1 {
		n = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > n {
		replicas = n
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		nodes:    n,
		replicas: replicas,
		points:   make([]ringPoint, 0, n*vnodes),
	}
	var key [16]byte
	for node := 0; node < n; node++ {
		for v := 0; v < vnodes; v++ {
			binary.LittleEndian.PutUint64(key[:8], uint64(node))
			binary.LittleEndian.PutUint64(key[8:], uint64(v))
			r.points = append(r.points, ringPoint{hash: fnvHash(key[:]), node: int32(node)})
		}
	}
	slices.SortFunc(r.points, func(a, b ringPoint) int {
		if a.hash != b.hash {
			if a.hash < b.hash {
				return -1
			}
			return 1
		}
		// Hash collisions resolve by node ordinal so the layout stays
		// deterministic regardless of sort internals.
		return int(a.node) - int(b.node)
	})
	return r
}

// fnvHash is the ring's placement hash (FNV-1a, 64-bit).
func fnvHash(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// Nodes returns the cluster size (== the partition count).
func (r *Ring) Nodes() int { return r.nodes }

// Replicas returns the replication factor.
func (r *Ring) Replicas() int { return r.replicas }

// Partition maps a document (by its global corpus PageID) to its owning
// partition: the first virtual point clockwise from the document's hash.
func (r *Ring) Partition(id corpus.PageID) int {
	if r.nodes == 1 {
		return 0
	}
	var key [8]byte
	binary.LittleEndian.PutUint64(key[:], uint64(id))
	h := fnvHash(key[:])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].node)
}

// AppendOwners appends the nodes serving partition part in failover order —
// the primary (node part) followed by the replica chain (the next
// Replicas-1 nodes clockwise on the node ring) — and returns the grown
// slice. Whole partitions replicate as a unit, so any single owner holds
// the complete partition and a scatter needs exactly one success per
// partition.
func (r *Ring) AppendOwners(dst []int, part int) []int {
	for i := 0; i < r.replicas; i++ {
		dst = append(dst, (part+i)%r.nodes)
	}
	return dst
}

// Owners returns AppendOwners into a fresh slice.
func (r *Ring) Owners(part int) []int {
	return r.AppendOwners(make([]int, 0, r.replicas), part)
}

// AppendOwnedBy appends the partitions node serves, primary first:
// partition node itself, then the partitions for which the node is a
// replica (the previous Replicas-1 partitions counterclockwise). It is
// the exact inverse of AppendOwners: part ∈ OwnedBy(n) ⇔ n ∈ Owners(part).
func (r *Ring) AppendOwnedBy(dst []int, node int) []int {
	for i := 0; i < r.replicas; i++ {
		dst = append(dst, ((node-i)%r.nodes+r.nodes)%r.nodes)
	}
	return dst
}

// OwnedBy returns AppendOwnedBy into a fresh slice.
func (r *Ring) OwnedBy(node int) []int {
	return r.AppendOwnedBy(make([]int, 0, r.replicas), node)
}

// PartitionPages splits pages into Nodes() per-partition groups,
// preserving the input (global document) order within each group —
// partition-local document ordinals must sort the same way as global
// ordinals or tie-breaks would diverge from the single-node ranking.
func (r *Ring) PartitionPages(pages []*corpus.Page) [][]*corpus.Page {
	out := make([][]*corpus.Page, r.nodes)
	for _, p := range pages {
		part := r.Partition(p.ID)
		out[part] = append(out[part], p)
	}
	return out
}

// CollectionStats is the global collection model a coordinator distributes
// to its nodes: everything the scoring functions read beyond per-document
// state. With an engine's stats overridden to the whole-corpus values, a
// partition-local engine scores each of its documents exactly as the
// single-node engine would.
type CollectionStats struct {
	CollFreq    map[textproc.Token]int
	DocFreq     map[textproc.Token]int
	TotalTokens int
	NumTerms    int
	NumDocs     int
}

// CollectionStats implements StatSource, so a materialized snapshot can be
// installed as an engine's scoring override (WithCollectionStats).

func (st *CollectionStats) StatCollFreq(t textproc.Token) int { return st.CollFreq[t] }
func (st *CollectionStats) StatDocFreq(t textproc.Token) int  { return st.DocFreq[t] }
func (st *CollectionStats) StatNumDocs() int                  { return st.NumDocs }
func (st *CollectionStats) StatTotalTokens() int              { return st.TotalTokens }
func (st *CollectionStats) StatNumTerms() int                 { return st.NumTerms }

// StatsOf extracts an index's own collection statistics — the values an
// engine over that index scores with. A cluster node reports StatsOf its
// primary partition's index (primaries are disjoint and cover the corpus,
// so the coordinator's per-field sums are exact), and tests build the
// expected global stats as StatsOf the full single-node index.
func StatsOf(idx *Index) *CollectionStats {
	st := &CollectionStats{
		CollFreq:    make(map[textproc.Token]int, idx.NumTerms()),
		DocFreq:     make(map[textproc.Token]int, idx.NumTerms()),
		TotalTokens: idx.TotalTokens(),
		NumTerms:    idx.NumTerms(),
		NumDocs:     idx.NumDocs(),
	}
	idx.Terms(func(t textproc.Token, df, cf int) {
		st.DocFreq[t] = df
		st.CollFreq[t] = cf
	})
	return st
}

// MergeStats accumulates src into dst field-by-field (map entries sum) and
// recomputes NumTerms as the merged vocabulary size. The coordinator folds
// each node's primary-partition stats into one global model this way.
func MergeStats(dst, src *CollectionStats) {
	if dst.CollFreq == nil {
		dst.CollFreq = make(map[textproc.Token]int, len(src.CollFreq))
	}
	if dst.DocFreq == nil {
		dst.DocFreq = make(map[textproc.Token]int, len(src.DocFreq))
	}
	for t, n := range src.CollFreq {
		dst.CollFreq[t] += n
	}
	for t, n := range src.DocFreq {
		dst.DocFreq[t] += n
	}
	dst.TotalTokens += src.TotalTokens
	dst.NumDocs += src.NumDocs
	dst.NumTerms = len(dst.CollFreq)
}

// WithCollectionStats returns a copy of the engine whose collection-level
// statistics (p(t|C) inputs, document frequencies, corpus size, average
// document length) come from st instead of the engine's own index.
// Per-document state (term frequencies, document lengths) still comes from
// the index. Passing nil restores index-local statistics.
func (e *Engine) WithCollectionStats(st *CollectionStats) *Engine {
	cp := *e
	if st == nil {
		cp.stats = nil // a nil *CollectionStats must read as "no override"
	} else {
		cp.stats = st
	}
	cp.cache = e.cache.fresh()
	return &cp
}

// RankedDoc is one (global document, score) pair as exchanged between
// cluster nodes: the document is identified by its corpus PageID — the
// global ordinal every node agrees on — because partition-local ordinals
// are meaningless across nodes.
type RankedDoc struct {
	Doc   int64
	Score float64
}

// betterRanked is betterCand over the cluster exchange type: higher score
// first, ties to the lower global document ordinal.
func betterRanked(a, b RankedDoc) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}

// compareRanked adapts betterRanked to slices.SortFunc.
func compareRanked(a, b RankedDoc) int {
	switch {
	case betterRanked(a, b):
		return -1
	case betterRanked(b, a):
		return 1
	}
	return 0
}

// mergeScratch is the pooled heap backing of one MergeTopKAppend call.
// RankedDoc holds no pointers, so pooling retains nothing.
type mergeScratch struct {
	h []RankedDoc
}

var mergeScratchPool = sync.Pool{New: func() any { return new(mergeScratch) }}

// MergeTopK returns MergeTopKAppend into a fresh slice.
func MergeTopK(k int, lists [][]RankedDoc) []RankedDoc {
	return MergeTopKAppend(nil, k, lists)
}

// MergeTopKAppend merges per-partition ranked lists into the global top-k,
// appended to dst. It reuses the engine's top-K heap (the PR 1 merge
// machinery) over pooled scratch, so with a reused dst the merge allocates
// nothing. Documents must be distinct across lists (partitions are
// disjoint), which makes the order total and the merge deterministic.
func MergeTopKAppend(dst []RankedDoc, k int, lists [][]RankedDoc) []RankedDoc {
	if k <= 0 {
		return dst
	}
	sc := mergeScratchPool.Get().(*mergeScratch)
	h := topKHeap[RankedDoc]{k: k, better: betterRanked, h: sc.h[:0]}
	for _, l := range lists {
		for _, rd := range l {
			h.push(rd)
		}
	}
	slices.SortFunc(h.h, compareRanked)
	dst = append(dst, h.h...)
	sc.h = h.h
	mergeScratchPool.Put(sc)
	return dst
}

// ClusterSpec pins one node's view of the cluster geometry; every node and
// the coordinator must agree on Nodes and Replicas or placements diverge.
type ClusterSpec struct {
	Nodes    int
	Replicas int
	NodeID   int
}

// Validate reports whether the spec describes a consistent geometry.
func (s ClusterSpec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("cluster: need at least 1 node, got %d", s.Nodes)
	}
	if s.NodeID < 0 || s.NodeID >= s.Nodes {
		return fmt.Errorf("cluster: node id %d out of range [0,%d)", s.NodeID, s.Nodes)
	}
	if s.Replicas < 1 || s.Replicas > s.Nodes {
		return fmt.Errorf("cluster: replicas %d out of range [1,%d]", s.Replicas, s.Nodes)
	}
	return nil
}
