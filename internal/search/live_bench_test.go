package search

import (
	"sync"
	"testing"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/synth"
	"l2q/internal/textproc"
)

// liveBenchCorpus builds the benchCorpus page set plus a donor corpus
// (different generator seed) whose pages feed the live-ingest arms, and
// the shared seed-query pool.
func liveBenchCorpus(b *testing.B) (base, donors []*corpus.Page, qs [][]textproc.Token) {
	b.Helper()
	cfg := synth.TestConfig(synth.DomainResearchers)
	cfg.NumEntities = 120
	cfg.PagesPerEntity = 30
	g, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	base = g.Corpus.Pages
	dcfg := cfg
	dcfg.Seed = cfg.Seed + 1
	dcfg.NumEntities = 40
	dg, err := synth.Generate(dcfg)
	if err != nil {
		b.Fatal(err)
	}
	donors = dg.Corpus.Pages
	for _, p := range base {
		p.Tokens() // warm token caches so arms measure scoring, not parsing
	}
	for _, p := range donors {
		p.Tokens()
	}
	for _, e := range g.Corpus.Entities[:60] {
		qs = append(qs, g.Tokenizer.Tokenize(e.SeedQuery))
	}
	return base, donors, qs
}

// BenchmarkLiveSearchAllocs is BenchmarkSearchAllocs on a multi-segment
// LiveEngine — the gate (scripts/alloc_gate.sh) pins the live cache-hit
// path at the frozen engine's ceilings even with the generational layout
// in front:
//
//	cached/append   SearchAppend into a reused buffer on a warm
//	                epoch-keyed cache. Pinned at 0 allocs/op.
//	cached          Search on a warm cache: the fresh result slice.
//
// Renaming a benchmark breaks the gate — update the script in the same
// change.
func BenchmarkLiveSearchAllocs(b *testing.B) {
	base, _, qs := liveBenchCorpus(b)
	q := qs[0]
	// Background compaction off and a small memtable, so the engine is
	// guaranteed to hold several segments while the gate measures.
	mk := func(b *testing.B) *LiveEngine {
		le := NewLiveEngine(nil, Options{ScoreWorkers: 1}, LiveOptions{MemtableDocs: 64, CompactFanIn: -1})
		le.Add(base[:400]...)
		if m := le.Metrics(); m.Segments < 2 {
			b.Fatalf("want a multi-segment view, got %d segment(s)", m.Segments)
		}
		return le
	}
	b.Run("cached/append", func(b *testing.B) {
		le := mk(b)
		var dst []Result
		dst = le.SearchAppend(dst, q) // warm the cache
		if len(dst) == 0 {
			b.Fatal("no hits")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = le.SearchAppend(dst[:0], q)
		}
	})
	b.Run("cached", func(b *testing.B) {
		le := mk(b)
		if len(le.Search(q)) == 0 {
			b.Fatal("no hits")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			le.Search(q)
		}
	})
}

// BenchmarkLiveIngestSearch is the headline acceptance benchmark of the
// generational engine: sustained search throughput while ingesting must
// stay within 70% of a frozen engine over the same starting corpus (the
// CI live-bench step asserts the ratio from these qps metrics and archives
// them as BENCH_live.json).
//
// Both arms disable the query cache — the bar measures scoring capacity
// over the segmented view, not cache-hit ratios — and score serially per
// query so RunParallel owns the parallelism.
//
//	frozen        BuildIndex once, search only.
//	live-ingest   the same pages ingested through Add (sealing and
//	              background-compacting along the way), searched while a
//	              paced ingester keeps feeding donor pages.
func BenchmarkLiveIngestSearch(b *testing.B) {
	base, donors, qs := liveBenchCorpus(b)
	search := func(b *testing.B, searchAppend func([]Result, []textproc.Token) []Result) {
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var dst []Result
			i := 0
			for pb.Next() {
				dst = searchAppend(dst[:0], qs[i%len(qs)])
				i++
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	}
	b.Run("frozen", func(b *testing.B) {
		e := NewEngineOpts(BuildIndex(base), Options{CacheSize: -1, ScoreWorkers: 1})
		search(b, e.SearchAppend)
	})
	b.Run("live-ingest", func(b *testing.B) {
		le := NewLiveEngine(nil, Options{CacheSize: -1, ScoreWorkers: 1}, LiveOptions{})
		for lo := 0; lo < len(base); lo += 128 {
			hi := lo + 128
			if hi > len(base) {
				hi = len(base)
			}
			le.Add(base[lo:hi]...)
		}
		le.Quiesce() // start from the steady-state segment layout
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // paced ingester: ~500 docs/s of live churn
			defer wg.Done()
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			i := 0
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					le.Add(donors[i%len(donors)])
					i++
				}
			}
		}()
		search(b, le.SearchAppend)
		close(stop)
		wg.Wait()
	})
}
