package search

import (
	"math"
	"sync"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// DefaultMu is the fallback Dirichlet smoothing parameter μ. Zhai &
// Lafferty (SIGIR 2001, the paper's reference [29]) recommend μ around the
// collection's document scale; 2000 suits long web documents. NewEngine
// auto-scales μ to twice the mean document length (clamped to
// [MinMu, DefaultMu]) because over-smoothing short documents erases the
// query-term signal entirely — the document model's weight is
// |d|/(|d|+μ), which at |d|=150 and μ=2000 leaves the query terms only 7%
// influence and makes retrieval insensitive to the query.
const DefaultMu = 2000.0

// MinMu is the lower clamp for the auto-scaled μ.
const MinMu = 100.0

// DefaultTopK is the number of results per query (paper: top 5, §VI-A).
const DefaultTopK = 5

// Result is one ranked retrieval hit.
type Result struct {
	Page  *corpus.Page
	Score float64 // log query-likelihood; higher is better
}

// Engine ranks indexed pages by Dirichlet-smoothed query likelihood:
//
//	score(q,d) = Σ_{t∈q} log( (tf(t,d) + μ·p(t|C)) / (|d| + μ) )
//
// Documents containing none of the query terms are not returned. Candidate
// scoring fans out over a bounded worker pool and each worker keeps a
// fixed-size top-K heap; an LRU cache short-circuits repeated queries
// (selector candidate evaluation re-fires the same queries constantly).
// Both are ranking-neutral — see SearchReference. The zero value is not
// usable; create with NewEngine. An Engine is safe for concurrent use.
type Engine struct {
	idx  *Index
	mu   float64
	topK int

	// BM25 mode (see bm25.go).
	bm25  bool
	k1, b float64

	// stats, when non-nil, overrides the collection-level statistics the
	// scoring reads (see WithCollectionStats) — the hook that makes a
	// partition-local engine score like the whole corpus in cluster mode,
	// and a segment-local engine score like the whole live view.
	stats StatSource

	workers int
	cache   *queryCache
}

// NewEngine creates an engine over idx with auto-scaled μ (see DefaultMu),
// DefaultTopK, and default parallelism/cache options.
func NewEngine(idx *Index) *Engine {
	return NewEngineOpts(idx, Options{})
}

// NewEngineOpts is NewEngine with explicit scoring-worker and cache
// settings (opts.Shards is an index-build knob and is ignored here).
func NewEngineOpts(idx *Index, opts Options) *Engine {
	opts = opts.withDefaults()
	mu := AutoMu(idx.NumDocs(), idx.TotalTokens())
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	return &Engine{
		idx:     idx,
		mu:      mu,
		topK:    DefaultTopK,
		workers: opts.ScoreWorkers,
		cache:   newQueryCache(cacheSize),
	}
}

// AutoMu is the NewEngine μ formula: twice the mean document length of a
// collection with numDocs documents and totalTokens tokens, clamped to
// [MinMu, DefaultMu] (numDocs ≤ 0 yields DefaultMu). Exported so a cluster
// coordinator can derive the same μ from aggregated global statistics that
// a single-node engine would derive from the whole index.
func AutoMu(numDocs, totalTokens int) float64 {
	if numDocs <= 0 {
		return DefaultMu
	}
	mu := 2 * float64(totalTokens) / float64(numDocs)
	if mu < MinMu {
		mu = MinMu
	}
	if mu > DefaultMu {
		mu = DefaultMu
	}
	return mu
}

// Mu returns the engine's Dirichlet smoothing parameter.
func (e *Engine) Mu() float64 { return e.mu }

// WithMu returns a copy of the engine using the given Dirichlet μ.
func (e *Engine) WithMu(mu float64) *Engine {
	cp := *e
	cp.mu = mu
	cp.cache = e.cache.fresh()
	return &cp
}

// WithTopK returns a copy of the engine returning k results per query.
func (e *Engine) WithTopK(k int) *Engine {
	cp := *e
	cp.topK = k
	cp.cache = e.cache.fresh()
	return &cp
}

// WithScoreWorkers returns a copy of the engine scoring candidates with n
// workers (n ≤ 1 scores serially). Results are identical for every n.
func (e *Engine) WithScoreWorkers(n int) *Engine {
	cp := *e
	if n < 1 {
		n = 1
	}
	cp.workers = n
	cp.cache = e.cache.fresh()
	return &cp
}

// WithCache returns a copy of the engine with a fresh LRU query cache of
// the given capacity; size ≤ 0 disables caching.
func (e *Engine) WithCache(size int) *Engine {
	cp := *e
	cp.cache = newQueryCache(size)
	return &cp
}

// WithOptions returns a copy of the engine re-tuned to opts' ScoreWorkers
// and CacheSize (resolved like NewEngineOpts; opts.Shards is ignored —
// the index's shard layout is fixed at build time).
func (e *Engine) WithOptions(opts Options) *Engine {
	opts = opts.withDefaults()
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	return e.WithScoreWorkers(opts.ScoreWorkers).WithCache(size)
}

// Index returns the underlying index.
func (e *Engine) Index() *Index { return e.idx }

// TopK returns the configured result-list size.
func (e *Engine) TopK() int { return e.topK }

// ScoreWorkers returns the configured candidate-scoring worker bound.
func (e *Engine) ScoreWorkers() int { return e.workers }

// CacheStats reports the query cache's lifetime hit and miss counts
// (zeroes when the cache is disabled).
func (e *Engine) CacheStats() (hits, misses uint64) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.stats()
}

// CollectionProb is the smoothed collection model p(t|C) with add-one
// smoothing so unseen terms keep scores finite. Exported so remote
// clients (internal/webapi) can reproduce the engine's scoring exactly
// from collection statistics.
func CollectionProb(collFreq, totalToks, numTerms int) float64 {
	return float64(collFreq+1) / float64(totalToks+numTerms+1)
}

// DirichletTermScore is the per-term Dirichlet-smoothed log-probability
// log((tf + μ·p(t|C)) / (dl + μ)).
func DirichletTermScore(tf, dl int, mu, pC float64) float64 {
	return math.Log((float64(tf) + mu*pC) / (float64(dl) + mu))
}

// StatSource supplies the collection-level statistics the scoring reads:
// everything beyond per-document state (term frequencies, document
// lengths, which always come from the engine's own index). Implemented by
// *CollectionStats (a materialized snapshot, the cluster exchange form)
// and by the live engine's view statistics (computed over its segments, so
// no O(vocabulary) snapshot is rebuilt per ingest).
type StatSource interface {
	StatCollFreq(t textproc.Token) int
	StatDocFreq(t textproc.Token) int
	StatNumDocs() int
	StatTotalTokens() int
	StatNumTerms() int
}

// Collection-level statistic reads, routed through the stats override when
// one is set and the engine's own index otherwise. Every scoring path
// reads these — never idx fields directly — so the override covers
// Dirichlet, BM25, and both reference paths at once.

func (e *Engine) statCollFreq(t textproc.Token) int {
	if e.stats != nil {
		return e.stats.StatCollFreq(t)
	}
	return e.idx.CollectionFreq(t)
}

func (e *Engine) statDocFreq(t textproc.Token) int {
	if e.stats != nil {
		return e.stats.StatDocFreq(t)
	}
	return e.idx.DocFreq(t)
}

func (e *Engine) statNumDocs() int {
	if e.stats != nil {
		return e.stats.StatNumDocs()
	}
	return e.idx.NumDocs()
}

func (e *Engine) statTotalTokens() int {
	if e.stats != nil {
		return e.stats.StatTotalTokens()
	}
	return e.idx.totalToks
}

func (e *Engine) statNumTerms() int {
	if e.stats != nil {
		return e.stats.StatNumTerms()
	}
	return e.idx.NumTerms()
}

// avgDocLen is the BM25 average document length over the (possibly
// overridden) collection statistics.
func (e *Engine) avgDocLen() float64 {
	return float64(e.statTotalTokens()) / math.Max(1, float64(e.statNumDocs()))
}

// collProb applies CollectionProb to the engine's collection statistics.
func (e *Engine) collProb(t textproc.Token) float64 {
	return CollectionProb(e.statCollFreq(t), e.statTotalTokens(), e.statNumTerms())
}

// Search returns the top-k pages for the query tokens. Ties are broken by
// document order for determinism. An empty query returns nil. Results are
// identical to SearchReference; the cache, worker pool and top-K heap only
// change how fast they are produced.
func (e *Engine) Search(query []textproc.Token) []Result {
	return e.SearchAppend(nil, query)
}

// SearchAppend is Search with a caller-provided result buffer: the top-k
// hits are appended to dst and the grown slice returned. All scoring
// state is pooled and the cache is probed with a pooled byte key, so with
// a reused dst a cache hit costs zero allocations and a miss allocates
// only the cache's canonical copy (plus any dst growth). Safe for
// concurrent use — scratch is per-call, never shared.
func (e *Engine) SearchAppend(dst []Result, query []textproc.Token) []Result {
	if len(query) == 0 {
		return dst
	}
	if e.cache == nil {
		return e.searchShardedAppend(dst, query)
	}
	kb := cacheKeyPool.Get().(*cacheKeyBuf)
	key := e.appendCacheKey(kb.b[:0], query)
	out, hit := e.cache.getAppend(key, dst)
	if !hit {
		start := len(dst)
		out = e.searchShardedAppend(dst, query)
		// The cache owns one canonical copy; the caller keeps mutating
		// its own slice freely (the pre-cache contract).
		var canonical []Result
		if n := len(out) - start; n > 0 {
			canonical = make([]Result, n)
			copy(canonical, out[start:])
		}
		e.cache.put(key, canonical)
	}
	kb.b = key
	cacheKeyPool.Put(kb)
	return out
}

// SearchWithSeed runs Search on seed ∥ query. The paper appends the seed
// query to every subsequent query "in order to focus on the target entity"
// (§I "Input").
func (e *Engine) SearchWithSeed(seed, query []textproc.Token) []Result {
	return e.SearchWithSeedAppend(nil, seed, query)
}

// seedQueryBuf is the pooled seed∥query concatenation buffer of one
// SearchWithSeedAppend call (token slices hold only string headers).
type seedQueryBuf struct{ toks []textproc.Token }

var seedQueryPool = sync.Pool{New: func() any { return new(seedQueryBuf) }}

// SearchWithSeedAppend is SearchWithSeed with a caller-provided result
// buffer; the seed∥query concatenation lives in pooled scratch.
func (e *Engine) SearchWithSeedAppend(dst []Result, seed, query []textproc.Token) []Result {
	sb := seedQueryPool.Get().(*seedQueryBuf)
	combined := append(append(sb.toks[:0], seed...), query...)
	dst = e.SearchAppend(dst, combined)
	sb.toks = combined
	seedQueryPool.Put(sb)
	return dst
}

// QueryLikelihood scores one page against a query with the engine's
// smoothing; used by the reinforcement graph to weight page–query edges.
func (e *Engine) QueryLikelihood(p *corpus.Page, query []textproc.Token) float64 {
	if len(query) == 0 {
		return math.Inf(-1)
	}
	toks := p.Tokens()
	tf := make(map[textproc.Token]int, len(query))
	for _, t := range toks {
		tf[t]++ // full histogram; queries are short so this is fine
	}
	s := 0.0
	for _, t := range query {
		s += DirichletTermScore(tf[t], len(toks), e.mu, e.collProb(t))
	}
	return s
}
