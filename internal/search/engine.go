package search

import (
	"math"
	"sort"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// DefaultMu is the fallback Dirichlet smoothing parameter μ. Zhai &
// Lafferty (SIGIR 2001, the paper's reference [29]) recommend μ around the
// collection's document scale; 2000 suits long web documents. NewEngine
// auto-scales μ to twice the mean document length (clamped to
// [MinMu, DefaultMu]) because over-smoothing short documents erases the
// query-term signal entirely — the document model's weight is
// |d|/(|d|+μ), which at |d|=150 and μ=2000 leaves the query terms only 7%
// influence and makes retrieval insensitive to the query.
const DefaultMu = 2000.0

// MinMu is the lower clamp for the auto-scaled μ.
const MinMu = 100.0

// DefaultTopK is the number of results per query (paper: top 5, §VI-A).
const DefaultTopK = 5

// Result is one ranked retrieval hit.
type Result struct {
	Page  *corpus.Page
	Score float64 // log query-likelihood; higher is better
}

// Engine ranks indexed pages by Dirichlet-smoothed query likelihood:
//
//	score(q,d) = Σ_{t∈q} log( (tf(t,d) + μ·p(t|C)) / (|d| + μ) )
//
// Documents containing none of the query terms are not returned. The zero
// value is not usable; create with NewEngine.
type Engine struct {
	idx  *Index
	mu   float64
	topK int

	// BM25 mode (see bm25.go).
	bm25  bool
	k1, b float64
}

// NewEngine creates an engine over idx with auto-scaled μ (see DefaultMu)
// and DefaultTopK.
func NewEngine(idx *Index) *Engine {
	mu := DefaultMu
	if n := idx.NumDocs(); n > 0 {
		avg := float64(idx.TotalTokens()) / float64(n)
		mu = 2 * avg
		if mu < MinMu {
			mu = MinMu
		}
		if mu > DefaultMu {
			mu = DefaultMu
		}
	}
	return &Engine{idx: idx, mu: mu, topK: DefaultTopK}
}

// Mu returns the engine's Dirichlet smoothing parameter.
func (e *Engine) Mu() float64 { return e.mu }

// WithMu returns a copy of the engine using the given Dirichlet μ.
func (e *Engine) WithMu(mu float64) *Engine {
	cp := *e
	cp.mu = mu
	return &cp
}

// WithTopK returns a copy of the engine returning k results per query.
func (e *Engine) WithTopK(k int) *Engine {
	cp := *e
	cp.topK = k
	return &cp
}

// Index returns the underlying index.
func (e *Engine) Index() *Index { return e.idx }

// TopK returns the configured result-list size.
func (e *Engine) TopK() int { return e.topK }

// CollectionProb is the smoothed collection model p(t|C) with add-one
// smoothing so unseen terms keep scores finite. Exported so remote
// clients (internal/webapi) can reproduce the engine's scoring exactly
// from collection statistics.
func CollectionProb(collFreq, totalToks, numTerms int) float64 {
	return float64(collFreq+1) / float64(totalToks+numTerms+1)
}

// DirichletTermScore is the per-term Dirichlet-smoothed log-probability
// log((tf + μ·p(t|C)) / (dl + μ)).
func DirichletTermScore(tf, dl int, mu, pC float64) float64 {
	return math.Log((float64(tf) + mu*pC) / (float64(dl) + mu))
}

// collProb applies CollectionProb to the engine's own index.
func (e *Engine) collProb(t textproc.Token) float64 {
	return CollectionProb(e.idx.collFreq[t], e.idx.totalToks, e.idx.NumTerms())
}

// Search returns the top-k pages for the query tokens. Ties are broken by
// document order for determinism. An empty query returns nil.
func (e *Engine) Search(query []textproc.Token) []Result {
	if len(query) == 0 {
		return nil
	}
	if e.bm25 {
		return e.searchBM25(query)
	}
	// Candidate set: union of postings.
	type cand struct {
		doc   int32
		score float64
	}
	tfs := make(map[int32]map[textproc.Token]int32)
	for _, t := range query {
		for _, p := range e.idx.postings[t] {
			m := tfs[p.doc]
			if m == nil {
				m = make(map[textproc.Token]int32, len(query))
				tfs[p.doc] = m
			}
			m[t] = p.tf
		}
	}
	if len(tfs) == 0 {
		return nil
	}
	cands := make([]cand, 0, len(tfs))
	for doc, m := range tfs {
		dl := e.idx.docLen[doc]
		s := 0.0
		for _, t := range query {
			s += DirichletTermScore(int(m[t]), dl, e.mu, e.collProb(t))
		}
		cands = append(cands, cand{doc: doc, score: s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].doc < cands[j].doc
	})
	k := e.topK
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Result, 0, k)
	for _, c := range cands[:k] {
		out = append(out, Result{Page: e.idx.docs[c.doc], Score: c.score})
	}
	return out
}

// SearchWithSeed runs Search on seed ∥ query. The paper appends the seed
// query to every subsequent query "in order to focus on the target entity"
// (§I "Input").
func (e *Engine) SearchWithSeed(seed, query []textproc.Token) []Result {
	combined := make([]textproc.Token, 0, len(seed)+len(query))
	combined = append(combined, seed...)
	combined = append(combined, query...)
	return e.Search(combined)
}

// QueryLikelihood scores one page against a query with the engine's
// smoothing; used by the reinforcement graph to weight page–query edges.
func (e *Engine) QueryLikelihood(p *corpus.Page, query []textproc.Token) float64 {
	if len(query) == 0 {
		return math.Inf(-1)
	}
	toks := p.Tokens()
	tf := make(map[textproc.Token]int, len(query))
	for _, t := range toks {
		tf[t]++ // full histogram; queries are short so this is fine
	}
	s := 0.0
	for _, t := range query {
		s += DirichletTermScore(tf[t], len(toks), e.mu, e.collProb(t))
	}
	return s
}
