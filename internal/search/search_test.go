package search

import (
	"math"
	"testing"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/synth"
	"l2q/internal/textproc"
)

func page(id corpus.PageID, ent corpus.EntityID, words ...string) *corpus.Page {
	return &corpus.Page{ID: id, Entity: ent, Paras: []corpus.Paragraph{
		{Tokens: words, Text: textproc.JoinQuery(words)},
	}}
}

func smallIndex() *Index {
	return BuildIndex([]*corpus.Page{
		page(0, 0, "marc", "snir", "research", "parallel", "hpc", "systems"),
		page(1, 0, "marc", "snir", "papers", "parallel", "hpc", "research"),
		page(2, 0, "marc", "snir", "research", "complexity", "parallel", "algorithms"),
		page(3, 0, "marc", "snir", "computational", "complexity", "illinois"),
		page(4, 0, "marc", "snir", "siebel", "center", "illinois"),
		page(5, 0, "marc", "snir", "senior", "manager", "ibm", "illinois"),
		page(6, 1, "philip", "yu", "data", "mining", "research", "tkde"),
	})
}

func TestIndexStats(t *testing.T) {
	idx := smallIndex()
	if idx.NumDocs() != 7 {
		t.Fatalf("NumDocs = %d", idx.NumDocs())
	}
	if idx.DocFreq("parallel") != 3 {
		t.Fatalf("DocFreq(parallel) = %d", idx.DocFreq("parallel"))
	}
	if idx.CollectionFreq("research") != 4 {
		t.Fatalf("CollectionFreq(research) = %d", idx.CollectionFreq("research"))
	}
	if idx.TotalTokens() != 40 {
		t.Fatalf("TotalTokens = %d", idx.TotalTokens())
	}
}

func TestSearchRanksContainingDocsFirst(t *testing.T) {
	e := NewEngine(smallIndex())
	res := e.Search([]textproc.Token{"parallel", "hpc"})
	if len(res) == 0 {
		t.Fatal("no results")
	}
	// Pages 0 and 1 contain both terms; they must rank above page 2
	// (parallel only).
	top2 := map[corpus.PageID]bool{res[0].Page.ID: true, res[1].Page.ID: true}
	if !top2[0] || !top2[1] {
		t.Fatalf("want pages 0,1 on top, got %v", top2)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
}

func TestSearchTopKAndEmpty(t *testing.T) {
	e := NewEngine(smallIndex()).WithTopK(2)
	res := e.Search([]textproc.Token{"research"})
	if len(res) != 2 {
		t.Fatalf("topk=2 returned %d", len(res))
	}
	if got := e.Search(nil); got != nil {
		t.Fatalf("empty query returned %v", got)
	}
	if got := e.Search([]textproc.Token{"zzz-not-in-corpus"}); got != nil {
		t.Fatalf("OOV-only query returned %v", got)
	}
}

func TestSearchWithSeedFocusesEntity(t *testing.T) {
	e := NewEngine(smallIndex())
	// "research" alone matches Yu's page too; with Snir's seed the top
	// results must all be Snir's pages.
	res := e.SearchWithSeed([]textproc.Token{"marc", "snir"}, []textproc.Token{"research"})
	if len(res) < 3 {
		t.Fatalf("too few results: %d", len(res))
	}
	for i, r := range res[:3] {
		if r.Page.Entity != 0 {
			t.Fatalf("result %d from wrong entity: page %d", i, r.Page.ID)
		}
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	e := NewEngine(smallIndex())
	a := e.Search([]textproc.Token{"illinois"})
	b := e.Search([]textproc.Token{"illinois"})
	if len(a) != len(b) {
		t.Fatal("result sizes differ")
	}
	for i := range a {
		if a[i].Page.ID != b[i].Page.ID {
			t.Fatal("nondeterministic ranking")
		}
	}
}

func TestQueryLikelihoodMatchesSearchOrdering(t *testing.T) {
	e := NewEngine(smallIndex())
	q := []textproc.Token{"parallel", "hpc"}
	res := e.Search(q)
	for _, r := range res {
		ql := e.QueryLikelihood(r.Page, q)
		if math.Abs(ql-r.Score) > 1e-9 {
			t.Fatalf("QueryLikelihood %.9f != search score %.9f", ql, r.Score)
		}
	}
	if !math.IsInf(e.QueryLikelihood(res[0].Page, nil), -1) {
		t.Fatal("empty query should score -inf")
	}
}

func TestMuAffectsSmoothing(t *testing.T) {
	idx := smallIndex()
	sharp := NewEngine(idx).WithMu(1)
	smooth := NewEngine(idx).WithMu(100000)
	q := []textproc.Token{"illinois"}
	rs := sharp.Search(q)
	rm := smooth.Search(q)
	if len(rs) == 0 || len(rm) == 0 {
		t.Fatal("no results")
	}
	// With tiny μ, term-containing docs dominate by a larger margin.
	gapSharp := rs[0].Score - rs[len(rs)-1].Score
	gapSmooth := rm[0].Score - rm[len(rm)-1].Score
	if gapSharp <= gapSmooth {
		t.Fatalf("expected sharper separation with small μ: %f vs %f", gapSharp, gapSmooth)
	}
}

func TestSearchOnSyntheticCorpus(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildIndex(g.Corpus.Pages)
	e := NewEngine(idx)
	ent := g.Corpus.Entities[0]
	seed := g.Tokenizer.Tokenize(ent.SeedQuery)
	res := e.Search(seed)
	if len(res) != DefaultTopK {
		t.Fatalf("seed search returned %d results", len(res))
	}
	for _, r := range res {
		if r.Page.Entity != ent.ID {
			t.Fatalf("seed query retrieved foreign page (entity %d)", r.Page.Entity)
		}
	}
}

func TestFetcherAccounting(t *testing.T) {
	f := NewFetcher(100 * time.Millisecond)
	idx := smallIndex()
	res := NewEngine(idx).Search([]textproc.Token{"research"})
	pages := f.Fetch(res)
	if len(pages) != len(res) {
		t.Fatalf("fetched %d pages, want %d", len(pages), len(res))
	}
	want := time.Duration(len(res)) * 100 * time.Millisecond
	if f.SimulatedTime() != want {
		t.Fatalf("SimulatedTime = %v, want %v", f.SimulatedTime(), want)
	}
	if f.PagesFetched() != len(res) {
		t.Fatalf("PagesFetched = %d", f.PagesFetched())
	}
	f.Reset()
	if f.SimulatedTime() != 0 || f.PagesFetched() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}
