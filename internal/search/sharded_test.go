package search

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/synth"
	"l2q/internal/textproc"
)

// diffCorpus generates one synthetic corpus per seed for differential
// testing (paper-shaped pages, realistic vocabulary skew).
func diffCorpus(t testing.TB, seed uint64) ([]*corpus.Page, [][]textproc.Token) {
	t.Helper()
	cfg := synth.TestConfig(synth.DomainResearchers)
	cfg.NumEntities = 40
	cfg.PagesPerEntity = 12
	cfg.Seed = seed
	g, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Query mix: entity seeds, seed∥aspect-word combos, random token
	// pairs/triples drawn from the corpus, duplicates, and OOV terms.
	rng := rand.New(rand.NewPCG(seed, 99))
	var vocab []textproc.Token
	seen := map[textproc.Token]bool{}
	for _, p := range g.Corpus.Pages[:30] {
		for _, tok := range p.Tokens() {
			if !seen[tok] {
				seen[tok] = true
				vocab = append(vocab, tok)
			}
		}
	}
	pick := func() textproc.Token { return vocab[rng.IntN(len(vocab))] }
	var queries [][]textproc.Token
	for _, e := range g.Corpus.Entities[:15] {
		st := g.Tokenizer.Tokenize(e.SeedQuery)
		queries = append(queries, st)
		queries = append(queries, append(append([]textproc.Token{}, st...), pick()))
	}
	for i := 0; i < 40; i++ {
		q := []textproc.Token{pick(), pick()}
		if i%3 == 0 {
			q = append(q, pick())
		}
		if i%5 == 0 {
			q = append(q, q[0]) // duplicate token
		}
		queries = append(queries, q)
	}
	queries = append(queries,
		[]textproc.Token{"zz-out-of-vocabulary"},
		[]textproc.Token{pick(), "zz-out-of-vocabulary"},
	)
	return g.Corpus.Pages, queries
}

// assertSameResults checks rank equality and score agreement within 1e-12.
func assertSameResults(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: result count %d != reference %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Page.ID != got[i].Page.ID {
			t.Fatalf("%s: rank %d page %d != reference page %d",
				label, i, got[i].Page.ID, want[i].Page.ID)
		}
		if d := math.Abs(want[i].Score - got[i].Score); d > 1e-12 {
			t.Fatalf("%s: rank %d score diff %g exceeds 1e-12", label, i, d)
		}
	}
}

// TestShardedMatchesReference is the differential guarantee of the issue:
// the sharded, parallel, heap-ranked, cached Search returns identical
// rankings to the retained single-threaded reference for both scoring
// modes, across shard counts, worker counts, topK values and seeds.
func TestShardedMatchesReference(t *testing.T) {
	shardCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0), 64}
	for _, seed := range []uint64{7, 2016} {
		pages, queries := diffCorpus(t, seed)
		for _, shards := range shardCounts {
			idx := BuildIndexOpts(pages, Options{Shards: shards})
			for _, workers := range []int{1, 2, 7} {
				for _, topK := range []int{1, 5, 50} {
					base := NewEngineOpts(idx, Options{ScoreWorkers: workers}).WithTopK(topK)
					engines := map[string]*Engine{
						"dirichlet": base,
						"bm25":      base.WithBM25(DefaultBM25K1, DefaultBM25B),
					}
					for mode, e := range engines {
						for _, q := range queries {
							want := e.SearchReference(q)
							assertSameResults(t, mode, want, e.Search(q))
							// Second call exercises the cache hit path.
							assertSameResults(t, mode+"/cached", want, e.Search(q))
						}
					}
				}
			}
		}
	}
}

// TestShardCountInvariantStats proves the index's observable statistics do
// not depend on the shard layout.
func TestShardCountInvariantStats(t *testing.T) {
	pages, queries := diffCorpus(t, 13)
	ref := BuildIndexOpts(pages, Options{Shards: 1})
	for _, shards := range []int{2, 5, 64} {
		idx := BuildIndexOpts(pages, Options{Shards: shards})
		if idx.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", idx.NumShards(), shards)
		}
		if idx.NumDocs() != ref.NumDocs() || idx.NumTerms() != ref.NumTerms() ||
			idx.TotalTokens() != ref.TotalTokens() {
			t.Fatalf("shards=%d: stats differ from single-shard index", shards)
		}
		for _, q := range queries {
			for _, tok := range q {
				if idx.DocFreq(tok) != ref.DocFreq(tok) {
					t.Fatalf("shards=%d: DocFreq(%q) differs", shards, tok)
				}
				if idx.CollectionFreq(tok) != ref.CollectionFreq(tok) {
					t.Fatalf("shards=%d: CollectionFreq(%q) differs", shards, tok)
				}
			}
		}
	}
}

// TestDumpRestoreAcrossShardCounts round-trips the postings through the
// store's Dump/Restore surface with mismatched shard counts on each side.
func TestDumpRestoreAcrossShardCounts(t *testing.T) {
	pages, queries := diffCorpus(t, 21)
	src := BuildIndexOpts(pages, Options{Shards: 5})
	dump := map[textproc.Token][]RawPosting{}
	src.DumpPostings(func(term textproc.Token, posts []RawPosting) {
		dump[term] = append([]RawPosting(nil), posts...)
	})
	restored, err := RestoreIndexOpts(pages, dump, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewEngine(src), NewEngine(restored)
	for _, q := range queries {
		assertSameResults(t, "restored", a.Search(q), b.Search(q))
	}
}

// TestReshardPreservesRankings checks the map-redistribution path used
// when serving a store-restored index at an explicit shard count.
func TestReshardPreservesRankings(t *testing.T) {
	pages, queries := diffCorpus(t, 17)
	src := BuildIndexOpts(pages, Options{Shards: 4})
	for _, shards := range []int{1, 9, 64} {
		re := src.Reshard(shards)
		if re.NumShards() != shards {
			t.Fatalf("Reshard(%d).NumShards() = %d", shards, re.NumShards())
		}
		if re.NumTerms() != src.NumTerms() || re.TotalTokens() != src.TotalTokens() {
			t.Fatalf("Reshard(%d) changed index statistics", shards)
		}
		a, b := NewEngine(src), NewEngine(re)
		for _, q := range queries {
			assertSameResults(t, "reshard", a.Search(q), b.Search(q))
		}
	}
	if src.Reshard(4) != src {
		t.Fatal("Reshard to the same count should return the receiver")
	}
}

// TestCacheHitsAndIsolation checks that repeated queries hit the cache,
// that hits return correct (and independently mutable) slices, and that
// engine copies with different scoring parameters never share a cache.
func TestCacheHitsAndIsolation(t *testing.T) {
	pages, queries := diffCorpus(t, 5)
	idx := BuildIndex(pages)
	e := NewEngine(idx)
	q := queries[0]
	first := e.Search(q)
	if h, m := e.CacheStats(); h != 0 || m == 0 {
		t.Fatalf("after first search: hits=%d misses=%d", h, m)
	}
	second := e.Search(q)
	if h, _ := e.CacheStats(); h == 0 {
		t.Fatal("second identical search did not hit the cache")
	}
	assertSameResults(t, "cache", first, second)
	// Mutating a returned slice must not corrupt the cache.
	if len(second) > 0 {
		second[0] = Result{}
		third := e.Search(q)
		assertSameResults(t, "cache-after-mutation", first, third)
	}

	// A re-tuned copy must not see the old cache's entries as its own.
	sharp := e.WithMu(1)
	want := sharp.SearchReference(q)
	assertSameResults(t, "fresh-cache-after-WithMu", want, sharp.Search(q))
	bm := e.WithBM25(DefaultBM25K1, DefaultBM25B)
	assertSameResults(t, "fresh-cache-after-WithBM25", bm.SearchReference(q), bm.Search(q))

	// Disabled cache still returns correct results and reports no stats.
	off := e.WithCache(-1)
	assertSameResults(t, "cache-off", off.SearchReference(q), off.Search(q))
	if h, m := off.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("disabled cache reported stats %d/%d", h, m)
	}
}

// TestCacheEviction fills a tiny cache past capacity and checks both that
// evicted entries recompute correctly and that the cache never grows
// beyond its bound (indirectly: every answer stays correct).
func TestCacheEviction(t *testing.T) {
	pages, queries := diffCorpus(t, 31)
	idx := BuildIndex(pages)
	e := NewEngineOpts(idx, Options{CacheSize: 4})
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			assertSameResults(t, "eviction", e.SearchReference(q), e.Search(q))
		}
	}
}

// TestConcurrentSearchWithCache hammers one shared engine (cache enabled,
// parallel scoring enabled) from many goroutines; run under -race in CI.
// Every goroutine validates every result against the reference.
func TestConcurrentSearchWithCache(t *testing.T) {
	pages, queries := diffCorpus(t, 11)
	idx := BuildIndexOpts(pages, Options{Shards: 4})
	e := NewEngineOpts(idx, Options{ScoreWorkers: 4, CacheSize: 16})
	want := make([][]Result, len(queries))
	for i, q := range queries {
		want[i] = e.SearchReference(q)
	}
	var wg sync.WaitGroup
	errCh := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				qi := (i*7 + w) % len(queries)
				got := e.Search(queries[qi])
				if len(got) != len(want[qi]) {
					errCh <- "result count changed under concurrency"
					return
				}
				for r := range got {
					if got[r].Page.ID != want[qi][r].Page.ID || got[r].Score != want[qi][r].Score {
						errCh <- "ranking changed under concurrency"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if msg, ok := <-errCh; ok {
		t.Fatal(msg)
	}
}

// TestTopKHeapMatchesSort property-tests the heap against a full sort on
// random candidate streams, including heavy score ties.
func TestTopKHeapMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(300)
		k := 1 + rng.IntN(20)
		cands := make([]cand, n)
		h := topKHeap[cand]{k: k, better: betterCand}
		for i := range cands {
			// Coarse scores force ties so the doc-order tie-break is hit.
			cands[i] = cand{doc: int32(i), score: float64(rng.IntN(8))}
			h.push(cands[i])
		}
		bySort := append([]cand(nil), cands...)
		sortCands(bySort)
		if k > n {
			k = n
		}
		got := append([]cand(nil), h.h...)
		sortCands(got)
		for i := 0; i < k; i++ {
			if bySort[i] != got[i] {
				t.Fatalf("trial %d: heap top-%d diverges from sort at rank %d", trial, k, i)
			}
		}
	}
}

func sortCands(cs []cand) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && betterCand(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
