package search

import "testing"

// BenchmarkSearchAllocs is the query-path allocation trajectory the CI
// gate (scripts/alloc_gate.sh) pins, measured on the benchCorpus engine:
//
//	cached/append    SearchAppend into a reused buffer on a warm cache —
//	                 the domain-learning / selector steady state. Pinned
//	                 at 0 allocs/op.
//	cached           Search on a warm cache: the one allocation is the
//	                 fresh result slice handed to the caller.
//	nocache/append   the full sharded scoring pass with pooled scratch.
//
// Renaming a benchmark breaks the gate — update the script in the same
// change.
func BenchmarkSearchAllocs(b *testing.B) {
	idxs, qs := benchCorpus(b)
	q := qs[0]
	b.Run("cached/append", func(b *testing.B) {
		e := NewEngineOpts(idxs[0], Options{})
		var dst []Result
		dst = e.SearchAppend(dst, q) // warm the cache
		if len(dst) == 0 {
			b.Fatal("no hits")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = e.SearchAppend(dst[:0], q)
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := NewEngineOpts(idxs[0], Options{})
		if len(e.Search(q)) == 0 {
			b.Fatal("no hits")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Search(q)
		}
	})
	b.Run("nocache/append", func(b *testing.B) {
		e := NewEngineOpts(idxs[0], Options{CacheSize: -1, ScoreWorkers: 1})
		var dst []Result
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = e.SearchAppend(dst[:0], q)
		}
		if len(dst) == 0 {
			b.Fatal("no hits")
		}
	})
}

// BenchmarkSearchAppendConcurrent drives SearchAppend from many
// goroutines against one engine (each with its own destination buffer,
// sharing the pooled scoring scratch) — the l2qserve steady state. Run
// under -race by TestConcurrentSearchAppendRace; here it tracks the
// contended allocation picture.
func BenchmarkSearchAppendConcurrent(b *testing.B) {
	idxs, qs := benchCorpus(b)
	e := NewEngineOpts(idxs[0], Options{ScoreWorkers: 1})
	for _, q := range qs { // warm the cache so the steady state is measured
		e.Search(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var dst []Result
		i := 0
		for pb.Next() {
			dst = e.SearchAppend(dst[:0], qs[i%len(qs)])
			i++
		}
	})
}
