package search

import (
	"context"
	"sync"
	"time"

	"l2q/internal/corpus"
)

// Fetcher models the I/O-bound "download result pages" step of the harvest
// loop. The paper's fetch step takes ~18 s/query for researchers and
// ~8 s/query for cars (Fig. 14) against remote servers; our corpus is in
// memory, so the Fetcher *accounts* the latency a remote fetch would cost
// without sleeping, letting cmd/l2qexp regenerate Fig. 14's comparison.
// A Fetcher is safe for concurrent use (the pipeline scheduler fetches for
// many entities at once).
type Fetcher struct {
	// PerPageLatency is the simulated cost of downloading one page.
	PerPageLatency time.Duration
	// Sleep, when true, actually blocks for the simulated time (off in
	// experiments; useful for demos).
	Sleep bool

	mu        sync.Mutex
	simulated time.Duration
	fetched   int
}

// ResearcherFetchLatency and CarFetchLatency are calibrated so that a
// 5-result query costs ~18 s and ~8 s respectively, matching Fig. 14.
const (
	ResearcherFetchLatency = 3600 * time.Millisecond
	CarFetchLatency        = 1600 * time.Millisecond
)

// NewFetcher returns a fetcher with the given simulated per-page latency.
func NewFetcher(perPage time.Duration) *Fetcher {
	return &Fetcher{PerPageLatency: perPage}
}

// Fetch "downloads" the result pages, accounting simulated latency.
func (f *Fetcher) Fetch(results []Result) []*corpus.Page {
	//l2qvet:ignore ctxbg errorless legacy adapter: Fetch's public signature has no ctx; ctx-aware callers use FetchContext
	pages, _ := f.FetchContext(context.Background(), results)
	return pages
}

// FetchContext is Fetch with cancellation: a sleeping fetch (Sleep=true)
// wakes up when ctx is canceled and returns the context error, so a
// scheduler that parked a worker on a slow simulated download can reclaim
// it promptly. The latency accounting still records the full simulated
// cost — the download was started, which is what the paper's cost model
// charges for.
func (f *Fetcher) FetchContext(ctx context.Context, results []Result) ([]*corpus.Page, error) {
	cost := time.Duration(len(results)) * f.PerPageLatency
	f.mu.Lock()
	f.simulated += cost
	f.fetched += len(results)
	f.mu.Unlock()
	if f.Sleep && cost > 0 {
		t := time.NewTimer(cost)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	pages := make([]*corpus.Page, 0, len(results))
	for _, r := range results {
		pages = append(pages, r.Page)
	}
	return pages, nil
}

// SimulatedTime returns the total simulated fetch latency so far.
func (f *Fetcher) SimulatedTime() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.simulated
}

// PagesFetched returns the number of pages fetched so far.
func (f *Fetcher) PagesFetched() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fetched
}

// Reset clears the accounting counters.
func (f *Fetcher) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.simulated = 0
	f.fetched = 0
}
