package search

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/synth"
	"l2q/internal/textproc"
)

// liveTestCorpus generates a small synthetic corpus and a mixed query set
// (entity seed queries, seed ∥ aspect-ish continuations, single terms) —
// the shapes harvest sessions actually fire.
func liveTestCorpus(t testing.TB, domain corpus.Domain) ([]*corpus.Page, [][]textproc.Token) {
	t.Helper()
	cfg := synth.TestConfig(domain)
	g, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var qs [][]textproc.Token
	for i, e := range g.Corpus.Entities {
		seed := g.Tokenizer.Tokenize(e.SeedQuery)
		qs = append(qs, seed)
		if i < len(g.Corpus.Pages) {
			if toks := g.Corpus.Pages[i].Tokens(); len(toks) > 2 {
				qs = append(qs, append(append([]textproc.Token{}, seed...), toks[1], toks[2]))
				qs = append(qs, []textproc.Token{toks[0]})
			}
		}
	}
	return g.Corpus.Pages, qs
}

// requireParity asserts the live engine ranks byte-identically to a
// frozen engine rebuilt from the same final page set: same pages in the
// same order with bit-equal scores, plus equal collection statistics, μ,
// and query likelihoods.
func requireParity(t *testing.T, ctx string, le *LiveEngine, pages []*corpus.Page, qs [][]textproc.Token) {
	t.Helper()
	frozen := NewEngineOpts(BuildIndex(pages), Options{CacheSize: -1})
	if le.IsBM25() {
		frozen = frozen.WithBM25(DefaultBM25K1, DefaultBM25B)
	}
	if got, want := le.NumDocs(), frozen.Index().NumDocs(); got != want {
		t.Fatalf("%s: NumDocs = %d, frozen %d", ctx, got, want)
	}
	if got, want := le.NumTerms(), frozen.Index().NumTerms(); got != want {
		t.Fatalf("%s: NumTerms = %d, frozen %d", ctx, got, want)
	}
	if got, want := le.TotalTokens(), frozen.Index().TotalTokens(); got != want {
		t.Fatalf("%s: TotalTokens = %d, frozen %d", ctx, got, want)
	}
	if got, want := le.Mu(), frozen.Mu(); got != want {
		t.Fatalf("%s: Mu = %v, frozen %v", ctx, got, want)
	}
	var lres, fres []Result
	for qi, q := range qs {
		lres = le.SearchAppend(lres[:0], q)
		fres = frozen.SearchAppend(fres[:0], q)
		if len(lres) != len(fres) {
			t.Fatalf("%s: query %d: live %d hits, frozen %d", ctx, qi, len(lres), len(fres))
		}
		for i := range fres {
			if lres[i].Page != fres[i].Page || lres[i].Score != fres[i].Score {
				t.Fatalf("%s: query %d rank %d: live (page %d, %v), frozen (page %d, %v)",
					ctx, qi, i, lres[i].Page.ID, lres[i].Score, fres[i].Page.ID, fres[i].Score)
			}
		}
		if len(q) > 0 {
			if got, want := le.CollectionFreq(q[0]), frozen.Index().CollectionFreq(q[0]); got != want {
				t.Fatalf("%s: CollectionFreq(%q) = %d, frozen %d", ctx, q[0], got, want)
			}
			if got, want := le.DocFreq(q[0]), frozen.Index().DocFreq(q[0]); got != want {
				t.Fatalf("%s: DocFreq(%q) = %d, frozen %d", ctx, q[0], got, want)
			}
		}
	}
	for i := 0; i < len(pages) && i < 5; i++ {
		if got, want := le.QueryLikelihood(pages[i], qs[0]), frozen.QueryLikelihood(pages[i], qs[0]); got != want {
			t.Fatalf("%s: QueryLikelihood(page %d) = %v, frozen %v", ctx, pages[i].ID, got, want)
		}
	}
}

// TestLiveParityGrownVsRebuilt is the tentpole contract: a live engine
// grown from empty — across memtable sizes, ingest batch sizes, and
// compaction settings, on both domains — ranks byte-identically to a
// frozen engine rebuilt from the final page set.
func TestLiveParityGrownVsRebuilt(t *testing.T) {
	for _, domain := range []corpus.Domain{synth.DomainResearchers, synth.DomainCars} {
		pages, qs := liveTestCorpus(t, domain)
		for _, tc := range []struct {
			mem, fan, batch int
		}{
			{1, 2, 1},    // every doc its own segment, aggressive merging
			{7, -1, 3},   // no background compaction at all
			{16, 3, 5},   // mid-size generations
			{64, 4, 17},  // batches split across seal boundaries
			{1000, 4, 1}, // everything stays in the memtable
		} {
			le := NewLiveEngine(nil, Options{}, LiveOptions{
				MemtableDocs: tc.mem, CompactFanIn: tc.fan, IngestWorkers: 1,
			})
			for i := 0; i < len(pages); i += tc.batch {
				end := i + tc.batch
				if end > len(pages) {
					end = len(pages)
				}
				le.Add(pages[i:end]...)
			}
			le.Quiesce()
			ctx := fmt.Sprintf("%s mem=%d fan=%d batch=%d", domain, tc.mem, tc.fan, tc.batch)
			requireParity(t, ctx, le, pages, qs)
			if got, want := len(le.Pages()), len(pages); got != want {
				t.Fatalf("%s: Pages() = %d, want %d", ctx, got, want)
			}
		}
	}
}

// TestLiveParityRandomSchedule drives a seeded random mix of single adds,
// batch adds, explicit seals, and explicit compactions — with parity
// checked at intermediate checkpoints against a frozen rebuild of the
// prefix, not just at the end.
func TestLiveParityRandomSchedule(t *testing.T) {
	pages, qs := liveTestCorpus(t, synth.DomainResearchers)
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		le := NewLiveEngine(nil, Options{}, LiveOptions{
			MemtableDocs: 5, CompactFanIn: -2, IngestWorkers: 1,
		})
		next := 0
		checkpoints := map[int]bool{len(pages) / 3: true, 2 * len(pages) / 3: true, len(pages): true}
		for next < len(pages) {
			n := 1 + rng.Intn(4)
			if next+n > len(pages) {
				n = len(pages) - next
			}
			le.Add(pages[next : next+n]...)
			next += n
			switch rng.Intn(5) {
			case 0:
				le.Seal()
			case 1:
				le.Compact()
			}
			if checkpoints[next] {
				requireParity(t, fmt.Sprintf("seed=%d prefix=%d", seed, next), le, pages[:next], qs)
			}
		}
	}
}

// TestLiveParityBootstrapAndBM25 covers the frozen-boot path (bootstrap
// pages as one sealed segment, then grow) and the BM25 strategy.
func TestLiveParityBootstrapAndBM25(t *testing.T) {
	pages, qs := liveTestCorpus(t, synth.DomainCars)
	half := len(pages) / 2

	le := NewLiveEngine(pages[:half], Options{}, LiveOptions{MemtableDocs: 9, CompactFanIn: 2})
	requireParity(t, "bootstrap-only", le, pages[:half], qs)
	le.Add(pages[half:]...)
	le.Quiesce()
	requireParity(t, "bootstrap+grown", le, pages, qs)

	bm := NewLiveEngine(nil, Options{}, LiveOptions{MemtableDocs: 6, CompactFanIn: 2, BM25: true})
	bm.Add(pages...)
	bm.Quiesce()
	requireParity(t, "bm25", bm, pages, qs)
}

// TestLiveTopKOverride checks the per-request k override against frozen
// engines configured with the same k.
func TestLiveTopKOverride(t *testing.T) {
	pages, qs := liveTestCorpus(t, synth.DomainResearchers)
	le := NewLiveEngine(nil, Options{}, LiveOptions{MemtableDocs: 11})
	le.Add(pages...)
	le.Quiesce()
	frozen := NewEngineOpts(BuildIndex(pages), Options{CacheSize: -1})
	for _, k := range []int{1, 3, 10} {
		fk := frozen.WithTopK(k)
		var lres, fres []Result
		for _, q := range qs[:10] {
			lres = le.SearchTopKAppend(lres[:0], k, q)
			fres = fk.SearchAppend(fres[:0], q)
			if len(lres) != len(fres) {
				t.Fatalf("k=%d: live %d hits, frozen %d", k, len(lres), len(fres))
			}
			for i := range fres {
				if lres[i].Page != fres[i].Page || lres[i].Score != fres[i].Score {
					t.Fatalf("k=%d rank %d: live page %d, frozen page %d", k, i, lres[i].Page.ID, fres[i].Page.ID)
				}
			}
		}
	}
}

// TestLiveCacheEpochInvalidation: a publish must invalidate prior cached
// results via the epoch key — post-ingest queries see the new corpus —
// while repeated queries within one epoch hit the cache.
func TestLiveCacheEpochInvalidation(t *testing.T) {
	pages, qs := liveTestCorpus(t, synth.DomainResearchers)
	le := NewLiveEngine(nil, Options{}, LiveOptions{MemtableDocs: 50})
	le.Add(pages[:20]...)
	q := qs[0]

	le.Search(q)
	_, m0 := le.CacheStats()
	le.Search(q)
	h1, m1 := le.CacheStats()
	if m1 != m0 || h1 == 0 {
		t.Fatalf("same-epoch repeat did not hit cache: hits=%d misses %d→%d", h1, m0, m1)
	}
	epoch := le.Epoch()

	le.Add(pages[20:40]...)
	if le.Epoch() == epoch {
		t.Fatal("Add did not bump epoch")
	}
	res := le.Search(q)
	_, m2 := le.CacheStats()
	if m2 != m1+1 {
		t.Fatalf("post-ingest query should miss the stale epoch: misses %d→%d", m1, m2)
	}
	frozen := NewEngineOpts(BuildIndex(pages[:40]), Options{CacheSize: -1})
	fres := frozen.Search(q)
	if len(res) != len(fres) {
		t.Fatalf("post-ingest results stale: live %d hits, frozen %d", len(res), len(fres))
	}
	for i := range fres {
		if res[i].Page != fres[i].Page || res[i].Score != fres[i].Score {
			t.Fatalf("post-ingest rank %d stale: live page %d, frozen page %d", i, res[i].Page.ID, fres[i].Page.ID)
		}
	}
	if inv := le.Metrics().EpochInvalidations; inv == 0 {
		t.Fatal("EpochInvalidations gauge not counting")
	}
}

// TestLiveMetricsGauges sanity-checks the generational gauges across the
// segment lifecycle.
func TestLiveMetricsGauges(t *testing.T) {
	pages, _ := liveTestCorpus(t, synth.DomainResearchers)
	le := NewLiveEngine(nil, Options{}, LiveOptions{MemtableDocs: 4, CompactFanIn: -2, IngestWorkers: 1})
	le.Add(pages[:10]...)
	m := le.Metrics()
	if m.NumDocs != 10 || m.MemtableDocs != 2 || m.Segments != 3 {
		t.Fatalf("after 10 adds at memtable=4: %+v", m)
	}
	le.Compact()
	m = le.Metrics()
	if m.Compactions == 0 || m.DocsCompacted != 8 || m.Segments != 2 {
		t.Fatalf("after compact: %+v", m)
	}
	if m.Epoch == 0 || m.EpochInvalidations == 0 {
		t.Fatalf("epoch gauges flat: %+v", m)
	}
}

// liveSoakDuration mirrors the scheduler soak's L2Q_SOAK contract: a
// short default locally, 30 s in CI.
func liveSoakDuration(t *testing.T) time.Duration {
	if s := os.Getenv("L2Q_SOAK"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad L2Q_SOAK %q: %v", s, err)
		}
		return d
	}
	return 1500 * time.Millisecond
}

// TestLiveEngineSoak is the ingest+search+compact churn loop under the
// race detector: concurrent batched ingestion, seeded searches with
// reused buffers, explicit seal/compact churn, and metrics polling
// against one engine — then differential parity on the final corpus.
func TestLiveEngineSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	deadline := time.Now().Add(liveSoakDuration(t))
	pages, qs := liveTestCorpus(t, synth.DomainResearchers)
	le := NewLiveEngine(nil, Options{}, LiveOptions{MemtableDocs: 8, CompactFanIn: 2})

	var mu sync.Mutex // guards next (ingest order stays deterministic per worker claim)
	next := 0
	claim := func(n int) []*corpus.Page {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(pages) {
			return nil
		}
		if next+n > len(pages) {
			n = len(pages) - next
		}
		batch := pages[next : next+n]
		next += n
		return batch
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ { // ingesters
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				batch := claim(1 + w)
				if batch == nil {
					time.Sleep(time.Millisecond)
					continue
				}
				le.Add(batch...)
			}
		}(w)
	}
	for w := 0; w < 4; w++ { // searchers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dst []Result
			for i := 0; time.Now().Before(deadline); i++ {
				q := qs[(i*7+w)%len(qs)]
				dst = le.SearchAppend(dst[:0], q)
				for _, r := range dst {
					if r.Page == nil {
						t.Error("nil page in live result")
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // churn: explicit seals and compactions race the background compactor
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			if i%2 == 0 {
				le.Seal()
			} else {
				le.Compact()
			}
			le.Metrics()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()

	// Drain whatever the deadline cut off, then hold the parity bar.
	for {
		batch := claim(64)
		if batch == nil {
			break
		}
		le.Add(batch...)
	}
	le.Quiesce()
	requireParity(t, "post-soak", le, pages, qs)
}
