package search

import "runtime"

// DefaultCacheSize is the query-result cache capacity when Options.CacheSize
// is 0. Entries are tiny (a key string plus topK Result structs), so the
// default is generous enough to hold a whole domain-learning candidate pool.
const DefaultCacheSize = 4096

// maxShards caps the shard count; beyond this, per-shard maps are so sparse
// that hashing overhead dominates.
const maxShards = 256

// Options tunes the sharded retrieval engine. The zero value means "all
// defaults", which is what BuildIndex and NewEngine use, so existing callers
// keep their behavior; every field has an explicit opt-out.
type Options struct {
	// Shards is the number of token-hash shards the inverted index is
	// split into. 0 picks GOMAXPROCS; values are clamped to [1, 256].
	// Shard count changes memory layout only — rankings are identical for
	// every shard count (see TestShardedMatchesReference).
	Shards int
	// ScoreWorkers bounds the goroutines that score one query's candidate
	// documents. 0 picks GOMAXPROCS; 1 scores serially. Scores and
	// rankings are identical for every worker count.
	ScoreWorkers int
	// CacheSize is the capacity of the engine's LRU query-result cache.
	// 0 picks DefaultCacheSize; negative disables caching. The index is
	// immutable, so cached results never need invalidation.
	CacheSize int
}

// withDefaults resolves zero fields to their defaults and clamps ranges.
func (o Options) withDefaults() Options {
	if o.Shards == 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Shards > maxShards {
		o.Shards = maxShards
	}
	if o.ScoreWorkers == 0 {
		o.ScoreWorkers = runtime.GOMAXPROCS(0)
	}
	if o.ScoreWorkers < 1 {
		o.ScoreWorkers = 1
	}
	return o
}
