package search

import (
	"testing"

	"l2q/internal/textproc"
)

func TestBM25RanksContainingDocsFirst(t *testing.T) {
	e := NewEngine(smallIndex()).WithBM25(DefaultBM25K1, DefaultBM25B)
	if !e.IsBM25() {
		t.Fatal("BM25 mode not set")
	}
	res := e.Search([]textproc.Token{"parallel", "hpc"})
	if len(res) == 0 {
		t.Fatal("no results")
	}
	top2 := map[int32]bool{int32(res[0].Page.ID): true, int32(res[1].Page.ID): true}
	if !top2[0] || !top2[1] {
		t.Fatalf("want pages 0,1 on top, got %v", top2)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("not sorted")
		}
	}
}

func TestBM25OnlyScoresMatchingDocs(t *testing.T) {
	e := NewEngine(smallIndex()).WithBM25(0, -1) // bad params → defaults
	res := e.Search([]textproc.Token{"ibm"})
	if len(res) != 1 || res[0].Page.ID != 5 {
		t.Fatalf("BM25 ibm results = %v", res)
	}
	if got := e.Search(nil); got != nil {
		t.Fatal("empty query must return nil")
	}
	if got := e.Search([]textproc.Token{"zzz"}); got != nil {
		t.Fatal("OOV query must return nil")
	}
}

func TestBM25AndLMAgreeOnObviousQuery(t *testing.T) {
	idx := smallIndex()
	lm := NewEngine(idx)
	bm := NewEngine(idx).WithBM25(DefaultBM25K1, DefaultBM25B)
	q := []textproc.Token{"complexity"}
	rl, rb := lm.Search(q), bm.Search(q)
	if len(rl) == 0 || len(rb) == 0 {
		t.Fatal("no results")
	}
	// Both models must surface the two complexity pages (2 and 3) first.
	firstTwo := func(rs []Result) map[int]bool {
		m := map[int]bool{}
		for _, r := range rs[:2] {
			m[int(r.Page.ID)] = true
		}
		return m
	}
	if !firstTwo(rl)[2] || !firstTwo(rl)[3] || !firstTwo(rb)[2] || !firstTwo(rb)[3] {
		t.Fatalf("models disagree on the obvious query: lm=%v bm=%v", firstTwo(rl), firstTwo(rb))
	}
}

func TestWithBM25DoesNotMutateReceiver(t *testing.T) {
	e := NewEngine(smallIndex())
	_ = e.WithBM25(2.0, 0.5)
	if e.IsBM25() {
		t.Fatal("receiver mutated")
	}
}
