package search

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// appendTestEngine builds a small deterministic corpus with enough
// distinct queries to churn the cache and the pooled scoring scratch.
func appendTestEngine(t *testing.T, opts Options) (*Engine, [][]textproc.Token) {
	t.Helper()
	var pages []*corpus.Page
	terms := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < 40; i++ {
		words := []textproc.Token{
			terms[i%len(terms)], terms[(i+3)%len(terms)], terms[(i+5)%len(terms)],
			fmt.Sprintf("page%d", i), terms[i%len(terms)], "research",
		}
		pages = append(pages, &corpus.Page{ID: corpus.PageID(i), Paras: []corpus.Paragraph{
			{Tokens: words, Text: textproc.JoinQuery(words)},
		}})
	}
	var qs [][]textproc.Token
	for _, a := range terms {
		qs = append(qs, []textproc.Token{a})
		for _, b := range terms {
			qs = append(qs, []textproc.Token{a, b})
		}
	}
	return NewEngineOpts(BuildIndexOpts(pages, opts), opts), qs
}

// TestSearchAppendMatchesSearch pins the append variant to Search result
// for result — cold, cached, and with a reused buffer — and verifies an
// existing dst prefix survives.
func TestSearchAppendMatchesSearch(t *testing.T) {
	for _, cache := range []int{0, -1} {
		e, qs := appendTestEngine(t, Options{CacheSize: cache})
		var dst []Result
		for round := 0; round < 3; round++ { // round > 0 hits the cache when enabled
			for _, q := range qs {
				want := e.Search(q)
				dst = e.SearchAppend(dst[:0], q)
				if len(want) == 0 && len(dst) == 0 {
					continue
				}
				if !reflect.DeepEqual(dst, want) {
					t.Fatalf("cache=%d q=%v: append %v, search %v", cache, q, dst, want)
				}
			}
		}
		prefix := Result{Score: -12345}
		got := e.SearchAppend([]Result{prefix}, qs[0])
		if len(got) == 0 || got[0] != prefix {
			t.Fatalf("dst prefix not preserved: %v", got)
		}
	}
}

// TestSearchWithSeedAppendMatches does the same for the seed∥query
// concatenation path sessions use per fetch.
func TestSearchWithSeedAppendMatches(t *testing.T) {
	e, qs := appendTestEngine(t, Options{})
	seed := qs[1]
	var dst []Result
	for _, q := range qs[:20] {
		want := e.SearchWithSeed(seed, q)
		dst = e.SearchWithSeedAppend(dst[:0], seed, q)
		if len(want) == 0 && len(dst) == 0 {
			continue
		}
		if !reflect.DeepEqual(dst, want) {
			t.Fatalf("q=%v: append %v, want %v", q, dst, want)
		}
	}
}

// TestConcurrentSearchAppendRace hammers SearchAppend from many
// goroutines sharing one engine (and therefore the pooled scoring
// scratch, the pooled cache-key buffers, and the cache itself), each
// reusing its own destination buffer. Under -race (the CI default) this
// is the proof the pooled scratch never crosses goroutines; under any
// run it verifies results stay correct while contended.
func TestConcurrentSearchAppendRace(t *testing.T) {
	e, qs := appendTestEngine(t, Options{ScoreWorkers: 1})
	want := make([][]Result, len(qs))
	for i, q := range qs {
		want[i] = e.Search(q)
	}
	const goroutines = 8
	const rounds = 60
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var dst []Result
			for r := 0; r < rounds; r++ {
				i := (g*13 + r*7) % len(qs)
				dst = e.SearchAppend(dst[:0], qs[i])
				if len(dst) == 0 && len(want[i]) == 0 {
					continue
				}
				if !reflect.DeepEqual(dst, want[i]) {
					select {
					case errc <- fmt.Errorf("goroutine %d round %d q=%v: got %v want %v", g, r, qs[i], dst, want[i]):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
