package search

import (
	"math"

	"l2q/internal/textproc"
)

// The paper's data model only requires *an* information-retrieval model
// ("a query can retrieve a set of pages through an information retrieval
// model, such as a commercial search engine", §I). The experiments use
// query-likelihood with Dirichlet smoothing; BM25 is provided as an
// alternative so the harvesting stack can be exercised against a different
// ranking function (and because downstream users will ask for it). The
// scoring itself lives in scorer.go (sharded path) and reference.go
// (retained ground-truth path).

// Default BM25 parameters (standard Robertson values).
const (
	DefaultBM25K1 = 1.2
	DefaultBM25B  = 0.75
)

// WithBM25 returns a copy of the engine that ranks with Okapi BM25 instead
// of the Dirichlet query-likelihood model.
func (e *Engine) WithBM25(k1, b float64) *Engine {
	cp := *e
	cp.bm25 = true
	cp.k1 = k1
	cp.b = b
	if cp.k1 <= 0 {
		cp.k1 = DefaultBM25K1
	}
	if cp.b < 0 || cp.b > 1 {
		cp.b = DefaultBM25B
	}
	cp.cache = e.cache.fresh()
	return &cp
}

// IsBM25 reports whether the engine ranks with BM25.
func (e *Engine) IsBM25() bool { return e.bm25 }

// idf is the BM25 inverse document frequency over the engine's collection
// statistics.
func (e *Engine) idf(t textproc.Token) float64 {
	return bm25IDF(float64(e.statDocFreq(t)), float64(e.statNumDocs()))
}

// bm25IDF is the BM25 inverse document frequency with the +1 floor that
// keeps it positive for very common terms. One shared expression, so the
// live engine's hoisted per-view constants are bit-identical to what each
// segment engine would compute itself.
func bm25IDF(df, n float64) float64 {
	return math.Log((n-df+0.5)/(df+0.5) + 1)
}
