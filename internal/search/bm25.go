package search

import (
	"math"
	"sort"

	"l2q/internal/textproc"
)

// The paper's data model only requires *an* information-retrieval model
// ("a query can retrieve a set of pages through an information retrieval
// model, such as a commercial search engine", §I). The experiments use
// query-likelihood with Dirichlet smoothing; BM25 is provided as an
// alternative so the harvesting stack can be exercised against a different
// ranking function (and because downstream users will ask for it).

// Default BM25 parameters (standard Robertson values).
const (
	DefaultBM25K1 = 1.2
	DefaultBM25B  = 0.75
)

// WithBM25 returns a copy of the engine that ranks with Okapi BM25 instead
// of the Dirichlet query-likelihood model.
func (e *Engine) WithBM25(k1, b float64) *Engine {
	cp := *e
	cp.bm25 = true
	cp.k1 = k1
	cp.b = b
	if cp.k1 <= 0 {
		cp.k1 = DefaultBM25K1
	}
	if cp.b < 0 || cp.b > 1 {
		cp.b = DefaultBM25B
	}
	return &cp
}

// IsBM25 reports whether the engine ranks with BM25.
func (e *Engine) IsBM25() bool { return e.bm25 }

// idf is the BM25 inverse document frequency with the +1 floor that keeps
// it positive for very common terms.
func (e *Engine) idf(t textproc.Token) float64 {
	df := float64(e.idx.DocFreq(t))
	n := float64(e.idx.NumDocs())
	return math.Log((n-df+0.5)/(df+0.5) + 1)
}

// searchBM25 mirrors Search with BM25 scoring.
func (e *Engine) searchBM25(query []textproc.Token) []Result {
	if len(query) == 0 {
		return nil
	}
	avgdl := float64(e.idx.totalToks) / math.Max(1, float64(e.idx.NumDocs()))
	scores := make(map[int32]float64)
	for _, t := range query {
		idf := e.idf(t)
		for _, p := range e.idx.postings[t] {
			dl := float64(e.idx.docLen[p.doc])
			tf := float64(p.tf)
			scores[p.doc] += idf * (tf * (e.k1 + 1)) / (tf + e.k1*(1-e.b+e.b*dl/avgdl))
		}
	}
	if len(scores) == 0 {
		return nil
	}
	type cand struct {
		doc   int32
		score float64
	}
	cands := make([]cand, 0, len(scores))
	for doc, s := range scores {
		cands = append(cands, cand{doc: doc, score: s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].doc < cands[j].doc
	})
	k := e.topK
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Result, 0, k)
	for _, c := range cands[:k] {
		out = append(out, Result{Page: e.idx.docs[c.doc], Score: c.score})
	}
	return out
}
