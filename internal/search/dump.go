package search

import (
	"fmt"
	"sort"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// RawPosting is the exported form of one posting, used by the persistence
// layer (internal/store) to serialize an index without re-tokenizing the
// corpus on load.
type RawPosting struct {
	// Doc is the document ordinal (index into the page list the index was
	// built over), not the corpus PageID.
	Doc int32
	// TF is the term frequency in that document.
	TF int32
}

// DumpPostings calls fn once per term in lexicographic order, with the
// term's postings sorted by document ordinal. The posting slice is only
// valid during the call. The dump is independent of the index's shard
// count, so store files round-trip across any shard configuration.
func (idx *Index) DumpPostings(fn func(term textproc.Token, posts []RawPosting)) {
	terms := make([]string, 0, idx.numTerms)
	for s := range idx.shards {
		for t := range idx.shards[s].postings {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	var buf []RawPosting
	for _, t := range terms {
		src := idx.postingsFor(t)
		buf = buf[:0]
		for _, p := range src {
			buf = append(buf, RawPosting{Doc: p.doc, TF: p.tf})
		}
		fn(t, buf)
	}
}

// RestoreIndex rebuilds an index from dumped postings over the same page
// list (same order) the original index was built from, using the default
// shard count; use RestoreIndexOpts to choose one. Document lengths,
// collection frequencies and the total token count are recomputed from the
// postings, so the pages' token caches are not touched. It returns an
// error if a posting references a document ordinal out of range.
func RestoreIndex(pages []*corpus.Page, terms map[textproc.Token][]RawPosting) (*Index, error) {
	return RestoreIndexOpts(pages, terms, Options{})
}

// RestoreIndexOpts is RestoreIndex with an explicit shard count
// (opts.Shards, resolved like BuildIndexOpts).
func RestoreIndexOpts(pages []*corpus.Page, terms map[textproc.Token][]RawPosting, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	idx := &Index{
		docs:   pages,
		docLen: make([]int, len(pages)),
		shards: make([]indexShard, opts.Shards),
	}
	for s := range idx.shards {
		idx.shards[s].postings = make(map[textproc.Token][]posting)
		idx.shards[s].collFreq = make(map[textproc.Token]int)
	}
	for t, posts := range terms {
		dst := make([]posting, 0, len(posts))
		cf := 0
		for _, p := range posts {
			if p.Doc < 0 || int(p.Doc) >= len(pages) {
				return nil, fmt.Errorf("search: posting for %q references doc %d of %d", t, p.Doc, len(pages))
			}
			if p.TF <= 0 {
				return nil, fmt.Errorf("search: posting for %q has non-positive tf %d", t, p.TF)
			}
			dst = append(dst, posting{doc: p.Doc, tf: p.TF})
			idx.docLen[p.Doc] += int(p.TF)
			cf += int(p.TF)
		}
		sort.Slice(dst, func(i, j int) bool { return dst[i].doc < dst[j].doc })
		sh := &idx.shards[idx.shardFor(t)]
		sh.postings[t] = dst
		sh.collFreq[t] = cf
		sh.totalToks += cf
		idx.totalToks += cf
	}
	idx.numTerms = len(terms)
	return idx, nil
}
