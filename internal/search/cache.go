package search

import (
	"container/list"
	"strconv"
	"sync"

	"l2q/internal/textproc"
)

// queryCache is a thread-safe LRU cache of query results. Because the index
// is immutable, entries never go stale; eviction is purely capacity-driven.
// The cache owns its result slices: getAppend copies into the caller's
// buffer so callers can keep mutating the slices Search hands them (the
// pre-cache contract). Keys are probed as []byte — Go's map lookup on
// string(bytes) does not allocate — and materialized to a string only when
// an entry is actually inserted, so a cache hit costs zero allocations.
type queryCache struct {
	capacity int

	mu     sync.Mutex
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	res []Result
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	return &queryCache{capacity: capacity}
}

// fresh returns an empty cache with the receiver's capacity (nil-safe).
// Engine copies that change scoring parameters use it so a stale cache is
// never shared across differently-configured engines.
func (c *queryCache) fresh() *queryCache {
	if c == nil {
		return nil
	}
	return newQueryCache(c.capacity)
}

// getAppend looks key up and, on a hit, appends a copy of the cached
// results to dst (a cached empty result appends nothing). The bool
// reports whether the key was present.
func (c *queryCache) getAppend(key []byte, dst []Result) ([]Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[string(key)] // no-alloc lookup
	if !ok {
		c.misses++
		return dst, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return append(dst, el.Value.(*cacheEntry).res...), true
}

// put stores res (which the cache takes ownership of) under key. The key
// string is materialized only when a new entry is inserted.
func (c *queryCache) put(key []byte, res []Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byKey == nil {
		c.byKey = make(map[string]*list.Element, c.capacity)
		c.ll = list.New()
	}
	if el, ok := c.byKey[string(key)]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	k := string(key)
	c.byKey[k] = c.ll.PushFront(&cacheEntry{key: k, res: res})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
	}
}

func (c *queryCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// appendCacheKey canonicalizes a query for the cache into dst: scoring
// mode, result-list size, then the tokens joined with an unprintable
// separator (tokens are human text and never contain 0x1f). μ/k1/b need
// not appear — an engine copy with different smoothing gets a fresh cache
// (see the With* methods).
func (e *Engine) appendCacheKey(dst []byte, query []textproc.Token) []byte {
	if e.bm25 {
		dst = append(dst, 'b')
	} else {
		dst = append(dst, 'd')
	}
	dst = strconv.AppendInt(dst, int64(e.topK), 10)
	for _, t := range query {
		dst = append(dst, 0x1f)
		dst = append(dst, t...)
	}
	return dst
}

// cacheKeyBuf is the pooled key-assembly buffer of one Search call.
type cacheKeyBuf struct{ b []byte }

var cacheKeyPool = sync.Pool{New: func() any { return new(cacheKeyBuf) }}
