package search

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"l2q/internal/textproc"
)

// queryCache is a thread-safe LRU cache of query results. Because the index
// is immutable, entries never go stale; eviction is purely capacity-driven.
// The cache owns its result slices: get returns a copy so callers can keep
// mutating the slices Search hands them (the pre-cache contract).
type queryCache struct {
	capacity int

	mu     sync.Mutex
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	res []Result
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	return &queryCache{capacity: capacity}
}

// fresh returns an empty cache with the receiver's capacity (nil-safe).
// Engine copies that change scoring parameters use it so a stale cache is
// never shared across differently-configured engines.
func (c *queryCache) fresh() *queryCache {
	if c == nil {
		return nil
	}
	return newQueryCache(c.capacity)
}

func (c *queryCache) get(key string) ([]Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	cached := el.Value.(*cacheEntry).res
	if cached == nil {
		return nil, true
	}
	out := make([]Result, len(cached))
	copy(out, cached)
	return out, true
}

func (c *queryCache) put(key string, res []Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byKey == nil {
		c.byKey = make(map[string]*list.Element, c.capacity)
		c.ll = list.New()
	}
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
	}
}

func (c *queryCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cacheKey canonicalizes a query for the cache: scoring mode, result-list
// size, then the tokens joined with an unprintable separator (tokens are
// human text and never contain 0x1f). μ/k1/b need not appear — an engine
// copy with different smoothing gets a fresh cache (see the With* methods).
func (e *Engine) cacheKey(query []textproc.Token) string {
	var b strings.Builder
	n := 8
	for _, t := range query {
		n += len(t) + 1
	}
	b.Grow(n)
	if e.bm25 {
		b.WriteByte('b')
	} else {
		b.WriteByte('d')
	}
	b.WriteString(strconv.Itoa(e.topK))
	for _, t := range query {
		b.WriteByte(0x1f)
		b.WriteString(string(t))
	}
	return b.String()
}
