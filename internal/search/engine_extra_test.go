package search

import (
	"math"
	"testing"

	"l2q/internal/textproc"
)

func TestEngineMuAutoScaling(t *testing.T) {
	idx := smallIndex()
	e := NewEngine(idx)
	avg := float64(idx.TotalTokens()) / float64(idx.NumDocs())
	want := 2 * avg
	if want < MinMu {
		want = MinMu
	}
	if math.Abs(e.Mu()-want) > 1e-9 {
		t.Fatalf("auto μ = %v, want %v", e.Mu(), want)
	}
}

func TestEngineWithersDoNotMutate(t *testing.T) {
	idx := smallIndex()
	e := NewEngine(idx)
	e2 := e.WithMu(7).WithTopK(2)
	if e.Mu() == 7 || e.TopK() == 2 {
		t.Fatal("withers mutated the receiver")
	}
	if e2.Mu() != 7 || e2.TopK() != 2 {
		t.Fatal("withers did not apply")
	}
	if e2.Index() != idx {
		t.Fatal("index not shared")
	}
}

func TestSearchConcurrent(t *testing.T) {
	idx := smallIndex()
	e := NewEngine(idx)
	done := make(chan struct{})
	for w := 0; w < 6; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				e.Search([]textproc.Token{"research", "parallel"})
			}
		}()
	}
	for w := 0; w < 6; w++ {
		<-done
	}
}

func TestIndexAccessors(t *testing.T) {
	idx := smallIndex()
	if idx.NumTerms() == 0 {
		t.Fatal("no terms")
	}
	if idx.Doc(0) == nil {
		t.Fatal("Doc accessor broken")
	}
}
