package search

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"l2q/internal/corpus"
)

// TestRingDeterministicAcrossBuilds holds the placement map stable across
// independently built rings — the property the cluster relies on, since
// the coordinator and every node build their own Ring from the shared
// geometry and must agree on ownership without ever exchanging it.
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		a := NewRing(n, 2, 0)
		b := NewRing(n, 2, 0)
		for id := corpus.PageID(0); id < 2000; id++ {
			pa, pb := a.Partition(id), b.Partition(id)
			if pa != pb {
				t.Fatalf("n=%d: ring disagreement for doc %d: %d vs %d", n, id, pa, pb)
			}
			if pa < 0 || pa >= n {
				t.Fatalf("n=%d: partition %d out of range for doc %d", n, pa, id)
			}
		}
	}
}

// TestRingOwnersAndCover checks the replica chain: owners are distinct,
// the primary leads, OwnedBy is the exact inverse of AppendOwners, and
// partitions spread reasonably evenly over nodes.
func TestRingOwnersAndCover(t *testing.T) {
	r := NewRing(5, 3, 0)
	for part := 0; part < 5; part++ {
		owners := r.Owners(part)
		if len(owners) != 3 {
			t.Fatalf("partition %d: %d owners, want 3", part, len(owners))
		}
		if owners[0] != part {
			t.Fatalf("partition %d: primary is node %d", part, owners[0])
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("partition %d: duplicate owner %d", part, o)
			}
			seen[o] = true
			found := false
			for _, p := range r.OwnedBy(o) {
				if p == part {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d owns partition %d per Owners but not per OwnedBy", o, part)
			}
		}
	}
	// Balance: with vnodes the biggest partition should not dwarf the rest.
	counts := make([]int, 5)
	for id := corpus.PageID(0); id < 10000; id++ {
		counts[r.Partition(id)]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d owns no documents out of 10000", p)
		}
		if c > 10000/2 {
			t.Fatalf("partition %d owns %d of 10000 documents — ring badly unbalanced", p, c)
		}
	}
}

// TestMergeTopKMatchesSort property-tests the cluster merge against a full
// sort of the concatenated lists, with heavy ties to exercise the global
// document-ordinal tie-break.
func TestMergeTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	for trial := 0; trial < 200; trial++ {
		nLists := 1 + rng.IntN(5)
		k := 1 + rng.IntN(12)
		var all []RankedDoc
		lists := make([][]RankedDoc, nLists)
		next := int64(0)
		for i := range lists {
			for j := 0; j < rng.IntN(40); j++ {
				rd := RankedDoc{Doc: next, Score: float64(rng.IntN(6))}
				next++
				lists[i] = append(lists[i], rd)
				all = append(all, rd)
			}
		}
		want := append([]RankedDoc(nil), all...)
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && betterRanked(want[j], want[j-1]); j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		if k > len(want) {
			k = len(want)
		}
		got := MergeTopK(k, lists)
		if !reflect.DeepEqual(got, want[:k]) {
			t.Fatalf("trial %d: merge diverges from sort:\n got %v\nwant %v", trial, got, want[:k])
		}
	}
}

// TestPartitionedEnginesMatchSingleNode is the engine-level half of the
// tentpole's differential guarantee: a 3-node doc-partitioned split, with
// global CollectionStats and the global μ distributed to every partition
// engine, merges to rankings bit-identical to the single-node engine —
// scores included — for both the Dirichlet and BM25 models.
func TestPartitionedEnginesMatchSingleNode(t *testing.T) {
	pages, queries := diffCorpus(t, 11)
	fullIdx := BuildIndexOpts(pages, Options{})
	global := StatsOf(fullIdx)
	mu := AutoMu(fullIdx.NumDocs(), fullIdx.TotalTokens())

	ring := NewRing(3, 2, 0)
	groups := ring.PartitionPages(pages)

	// The aggregation the coordinator performs over per-node reports must
	// reproduce the single-node stats exactly.
	merged := &CollectionStats{}
	for _, grp := range groups {
		MergeStats(merged, StatsOf(BuildIndexOpts(grp, Options{})))
	}
	if !reflect.DeepEqual(merged, global) {
		t.Fatalf("merged per-partition stats diverge from single-node stats:\n got %+v\nwant %+v",
			statsSummary(merged), statsSummary(global))
	}

	for _, model := range []string{"dirichlet", "bm25"} {
		full := NewEngineOpts(fullIdx, Options{}).WithTopK(8)
		if model == "bm25" {
			full = full.WithBM25(0, 0)
		}
		parts := make([]*Engine, len(groups))
		for p, grp := range groups {
			e := NewEngineOpts(BuildIndexOpts(grp, Options{}), Options{}).
				WithTopK(8).WithCollectionStats(global).WithMu(mu)
			if model == "bm25" {
				e = e.WithBM25(0, 0)
			}
			parts[p] = e
		}
		for qi, q := range queries {
			want := full.Search(q)
			lists := make([][]RankedDoc, len(parts))
			byDoc := make(map[int64]Result)
			for p, e := range parts {
				for _, res := range e.Search(q) {
					rd := RankedDoc{Doc: int64(res.Page.ID), Score: res.Score}
					lists[p] = append(lists[p], rd)
					byDoc[rd.Doc] = res
				}
			}
			mergedTop := MergeTopK(8, lists)
			if len(mergedTop) != len(want) {
				t.Fatalf("%s query %d: merged %d hits, single-node %d", model, qi, len(mergedTop), len(want))
			}
			for i, rd := range mergedTop {
				if int64(want[i].Page.ID) != rd.Doc || want[i].Score != rd.Score {
					t.Fatalf("%s query %d rank %d: merged (doc %d, %v) vs single-node (doc %d, %v)",
						model, qi, i, rd.Doc, rd.Score, want[i].Page.ID, want[i].Score)
				}
				if got := byDoc[rd.Doc].Page; got == nil || int64(got.ID) != rd.Doc {
					t.Fatalf("%s query %d rank %d: merged doc %d not materializable from its partition", model, qi, i, rd.Doc)
				}
			}
		}
	}
}

// statsSummary keeps failure messages readable (the maps are huge).
func statsSummary(st *CollectionStats) [4]int {
	return [4]int{len(st.CollFreq), st.TotalTokens, st.NumTerms, st.NumDocs}
}

// BenchmarkScatterMergeAllocs pins the coordinator's merge path: K-way
// top-K merge of per-node ranked lists into a reused buffer over pooled
// heap scratch. Gated at 0 allocs/op by scripts/alloc_gate.sh — renaming
// this benchmark breaks the gate; update the script in the same change.
func BenchmarkScatterMergeAllocs(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 0))
	lists := make([][]RankedDoc, 3)
	next := int64(0)
	for i := range lists {
		for j := 0; j < 8; j++ {
			lists[i] = append(lists[i], RankedDoc{Doc: next, Score: rng.Float64()})
			next++
		}
	}
	var dst []RankedDoc
	dst = MergeTopKAppend(dst, 8, lists) // warm the pool
	if len(dst) != 8 {
		b.Fatalf("merged %d hits, want 8", len(dst))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = MergeTopKAppend(dst[:0], 8, lists)
	}
}

// TestWithCollectionStatsNilRestores checks the override round-trip: an
// engine given its own index's stats scores identically, and clearing the
// override returns to index-local statistics.
func TestWithCollectionStatsNilRestores(t *testing.T) {
	pages, queries := diffCorpus(t, 5)
	idx := BuildIndexOpts(pages, Options{})
	e := NewEngineOpts(idx, Options{})
	own := e.WithCollectionStats(StatsOf(idx))
	cleared := own.WithCollectionStats(nil)
	for _, q := range queries[:20] {
		want := e.Search(q)
		if !reflect.DeepEqual(own.Search(q), want) {
			t.Fatal("engine with its own stats as override diverges")
		}
		if !reflect.DeepEqual(cleared.Search(q), want) {
			t.Fatal("cleared override diverges from index-local scoring")
		}
	}
}
