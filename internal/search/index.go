// Package search implements the retrieval substrate: a sharded inverted
// index and a query-likelihood language model with Dirichlet smoothing,
// which is the exact retrieval model the paper uses over its fixed corpus
// (§VI-A: "we used a language model with Dirichlet smoothing as the search
// engine. For each query, pages in the corpus are ranked and the top 5 are
// returned").
//
// The index is split into token-hash shards so it can be built in parallel
// and scored across a bounded worker pool; the engine adds a fixed-size
// top-K heap (O(M log K) ranking) and an LRU query-result cache. All of
// this is ranking-neutral: every shard count, worker count and cache state
// returns the same results as the retained single-threaded reference path
// (Engine.SearchReference), which differential tests enforce.
//
// It also provides a Fetcher that simulates remote page-download latency so
// the Fig. 14 selection-vs-fetch comparison can be regenerated.
package search

import (
	"hash/maphash"
	"runtime"
	"sync"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// posting records one document's term frequency for a token.
type posting struct {
	doc int32 // index into Index.docs
	tf  int32
}

// indexShard holds the postings and collection frequencies for the tokens
// that hash to it. Splitting the term space this way lets BuildIndexOpts
// populate shards concurrently without locks and keeps per-map sizes small.
type indexShard struct {
	postings map[textproc.Token][]posting
	collFreq map[textproc.Token]int
	// totalToks is the collection mass owned by this shard's tokens;
	// the shard totals sum to Index.totalToks.
	totalToks int
}

// shardSeed is the fixed maphash seed all indexes share, so a query's
// token→shard mapping is stable across indexes with equal shard counts
// (restored indexes included).
var shardSeed = maphash.MakeSeed()

// Index is an immutable inverted index over a fixed page collection, split
// into token-hash shards. Build it once; concurrent reads are safe.
type Index struct {
	docs      []*corpus.Page
	docLen    []int
	shards    []indexShard
	totalToks int
	numTerms  int
}

// shardFor maps a token to its shard ordinal.
func (idx *Index) shardFor(t textproc.Token) int {
	if len(idx.shards) == 1 {
		return 0
	}
	return int(maphash.String(shardSeed, string(t)) % uint64(len(idx.shards)))
}

// postingsFor returns the token's posting list (nil when absent), sorted by
// ascending document ordinal.
func (idx *Index) postingsFor(t textproc.Token) []posting {
	return idx.shards[idx.shardFor(t)].postings[t]
}

// BuildIndex indexes the given pages with default options (shards =
// GOMAXPROCS). Page order is preserved and ties in ranking are broken by
// that order, keeping results deterministic.
func BuildIndex(pages []*corpus.Page) *Index {
	return BuildIndexOpts(pages, Options{})
}

// shardEntry is one (token, document, frequency) triple routed to a shard
// during the parallel counting phase.
type shardEntry struct {
	tok textproc.Token
	doc int32
	tf  int32
}

// BuildIndexOpts indexes the given pages across opts.Shards token-hash
// shards. The build runs in two parallel phases — per-document term
// counting over contiguous document ranges, then per-shard posting
// assembly — and produces an index whose observable state (postings,
// frequencies, statistics) is independent of the shard count and of
// scheduling. Intermediate state is O(ranges × shards) flat buffers (one
// entry per distinct document–term pair), not per-document buckets, so
// memory overhead stays proportional to the postings themselves.
func BuildIndexOpts(pages []*corpus.Page, opts Options) *Index {
	opts = opts.withDefaults()
	nShards := opts.Shards
	idx := &Index{
		docs:   pages,
		docLen: make([]int, len(pages)),
		shards: make([]indexShard, nShards),
	}
	if len(pages) == 0 {
		for s := range idx.shards {
			idx.shards[s].postings = make(map[textproc.Token][]posting)
			idx.shards[s].collFreq = make(map[textproc.Token]int)
		}
		return idx
	}

	// Phase 1: each worker owns a contiguous document range, tokenizes
	// and counts terms (Page.Tokens caches under sync.Once), and routes
	// every (token, doc, tf) entry to a per-(range, shard) buffer.
	// Ranges are processed in document order within a worker, so every
	// buffer's entries are doc-ordinal-ascending.
	nRanges := runtime.GOMAXPROCS(0)
	if nRanges > len(pages) {
		nRanges = len(pages)
	}
	if nRanges < 1 {
		nRanges = 1
	}
	perRange := make([][][]shardEntry, nRanges)
	var wg sync.WaitGroup
	for r := 0; r < nRanges; r++ {
		lo := len(pages) * r / nRanges
		hi := len(pages) * (r + 1) / nRanges
		wg.Add(1)
		go func(r, lo, hi int) {
			defer wg.Done()
			bufs := make([][]shardEntry, nShards)
			for di := lo; di < hi; di++ {
				toks := idx.docs[di].Tokens()
				idx.docLen[di] = len(toks)
				tf := make(map[textproc.Token]int32, len(toks))
				for _, t := range toks {
					tf[t]++
				}
				for t, n := range tf {
					s := idx.shardFor(t)
					bufs[s] = append(bufs[s], shardEntry{tok: t, doc: int32(di), tf: n})
				}
			}
			perRange[r] = bufs
		}(r, lo, hi)
	}
	wg.Wait()
	for _, n := range idx.docLen {
		idx.totalToks += n
	}

	// Phase 2: assemble each shard's postings by concatenating its
	// buffers in range order — ranges are contiguous and internally
	// doc-ascending, so every posting list comes out sorted by document
	// ordinal without a sort pass. Shards are disjoint, so this phase
	// parallelizes over shards without locks.
	var swg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		swg.Add(1)
		go func(s int) {
			defer swg.Done()
			sh := &idx.shards[s]
			sh.postings = make(map[textproc.Token][]posting)
			sh.collFreq = make(map[textproc.Token]int)
			for r := 0; r < nRanges; r++ {
				for _, e := range perRange[r][s] {
					sh.postings[e.tok] = append(sh.postings[e.tok], posting{doc: e.doc, tf: e.tf})
					sh.collFreq[e.tok] += int(e.tf)
					sh.totalToks += int(e.tf)
				}
			}
		}(s)
	}
	swg.Wait()
	for s := range idx.shards {
		idx.numTerms += len(idx.shards[s].postings)
	}
	return idx
}

// Reshard returns an index with the same postings redistributed across the
// given shard count (resolved like Options.Shards). Posting slices are
// immutable and shared with the receiver, so this is a map-redistribution
// pass, not a rebuild — cheap enough to re-layout an index restored from a
// store file. Rankings are unaffected.
func (idx *Index) Reshard(shards int) *Index {
	opts := Options{Shards: shards}.withDefaults()
	if opts.Shards == len(idx.shards) {
		return idx
	}
	out := &Index{
		docs:      idx.docs,
		docLen:    idx.docLen,
		shards:    make([]indexShard, opts.Shards),
		totalToks: idx.totalToks,
		numTerms:  idx.numTerms,
	}
	for s := range out.shards {
		out.shards[s].postings = make(map[textproc.Token][]posting)
		out.shards[s].collFreq = make(map[textproc.Token]int)
	}
	for s := range idx.shards {
		for t, posts := range idx.shards[s].postings {
			dst := &out.shards[out.shardFor(t)]
			dst.postings[t] = posts
			cf := idx.shards[s].collFreq[t]
			dst.collFreq[t] = cf
			dst.totalToks += cf
		}
	}
	return out
}

// NumDocs returns the number of indexed pages.
func (idx *Index) NumDocs() int { return len(idx.docs) }

// NumTerms returns the vocabulary size.
func (idx *Index) NumTerms() int { return idx.numTerms }

// NumShards returns the index's shard count.
func (idx *Index) NumShards() int { return len(idx.shards) }

// TotalTokens returns the collection length in tokens.
func (idx *Index) TotalTokens() int { return idx.totalToks }

// DocFreq returns the number of documents containing the token.
func (idx *Index) DocFreq(t textproc.Token) int { return len(idx.postingsFor(t)) }

// CollectionFreq returns the token's total frequency in the collection.
func (idx *Index) CollectionFreq(t textproc.Token) int {
	return idx.shards[idx.shardFor(t)].collFreq[t]
}

// Doc returns the i-th indexed page.
func (idx *Index) Doc(i int) *corpus.Page { return idx.docs[i] }

// Terms calls f for every distinct indexed token with its document and
// collection frequencies. Iteration order is unspecified (shards are hash
// maps); callers needing a deterministic order must collect and sort.
func (idx *Index) Terms(f func(t textproc.Token, docFreq, collFreq int)) {
	for s := range idx.shards {
		sh := &idx.shards[s]
		for t, posts := range sh.postings {
			f(t, len(posts), sh.collFreq[t])
		}
	}
}
