// Package search implements the retrieval substrate: an inverted index and
// a query-likelihood language model with Dirichlet smoothing, which is the
// exact retrieval model the paper uses over its fixed corpus (§VI-A: "we
// used a language model with Dirichlet smoothing as the search engine. For
// each query, pages in the corpus are ranked and the top 5 are returned").
//
// It also provides a Fetcher that simulates remote page-download latency so
// the Fig. 14 selection-vs-fetch comparison can be regenerated.
package search

import (
	"sort"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// posting records one document's term frequency for a token.
type posting struct {
	doc int32 // index into Index.docs
	tf  int32
}

// Index is an immutable inverted index over a fixed page collection.
// Build it once; concurrent reads are safe.
type Index struct {
	docs      []*corpus.Page
	docLen    []int
	postings  map[textproc.Token][]posting
	collFreq  map[textproc.Token]int
	totalToks int
}

// BuildIndex indexes the given pages. Page order is preserved and ties in
// ranking are broken by that order, keeping results deterministic.
func BuildIndex(pages []*corpus.Page) *Index {
	idx := &Index{
		docs:     pages,
		docLen:   make([]int, len(pages)),
		postings: make(map[textproc.Token][]posting),
		collFreq: make(map[textproc.Token]int),
	}
	for di, p := range pages {
		toks := p.Tokens()
		idx.docLen[di] = len(toks)
		idx.totalToks += len(toks)
		tf := make(map[textproc.Token]int, len(toks))
		for _, t := range toks {
			tf[t]++
		}
		// Deterministic posting order: sort tokens per doc.
		keys := make([]string, 0, len(tf))
		for t := range tf {
			keys = append(keys, t)
		}
		sort.Strings(keys)
		for _, t := range keys {
			idx.postings[t] = append(idx.postings[t], posting{doc: int32(di), tf: int32(tf[t])})
			idx.collFreq[t] += tf[t]
		}
	}
	return idx
}

// NumDocs returns the number of indexed pages.
func (idx *Index) NumDocs() int { return len(idx.docs) }

// NumTerms returns the vocabulary size.
func (idx *Index) NumTerms() int { return len(idx.postings) }

// TotalTokens returns the collection length in tokens.
func (idx *Index) TotalTokens() int { return idx.totalToks }

// DocFreq returns the number of documents containing the token.
func (idx *Index) DocFreq(t textproc.Token) int { return len(idx.postings[t]) }

// CollectionFreq returns the token's total frequency in the collection.
func (idx *Index) CollectionFreq(t textproc.Token) int { return idx.collFreq[t] }

// Doc returns the i-th indexed page.
func (idx *Index) Doc(i int) *corpus.Page { return idx.docs[i] }
