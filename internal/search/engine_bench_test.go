package search

import (
	"testing"

	"l2q/internal/synth"
	"l2q/internal/textproc"
)

// benchCorpus builds one paper-shaped corpus (120 entities × 30 pages) and
// a pool of realistic queries (entity seeds — the hottest query shape in
// domain learning and selector scoring).
func benchCorpus(b *testing.B) ([]*Index, [][]textproc.Token) {
	b.Helper()
	cfg := synth.TestConfig(synth.DomainResearchers)
	cfg.NumEntities = 120
	cfg.PagesPerEntity = 30
	g, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	idx := BuildIndex(g.Corpus.Pages)
	var qs [][]textproc.Token
	for _, e := range g.Corpus.Entities[:60] {
		qs = append(qs, g.Tokenizer.Tokenize(e.SeedQuery))
	}
	return []*Index{idx}, qs
}

// BenchmarkIndexBuildCold measures a from-scratch build at the default
// shard count vs. a single shard (the pre-sharding layout).
func BenchmarkIndexBuildCold(b *testing.B) {
	cfg := synth.TestConfig(synth.DomainResearchers)
	cfg.NumEntities = 120
	cfg.PagesPerEntity = 30
	g, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pages := g.Corpus.Pages
	for _, p := range pages {
		p.Tokens() // warm token caches so the build itself is measured
	}
	b.Run("sharded-default", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildIndexOpts(pages, Options{})
		}
	})
	b.Run("single-shard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildIndexOpts(pages, Options{Shards: 1})
		}
	})
}

// BenchmarkHotSingleQuery compares one repeated query on the reference
// path, the sharded path without cache, and the full engine (cache on —
// the domain-learning/selector-evaluation steady state).
func BenchmarkHotSingleQuery(b *testing.B) {
	idxs, qs := benchCorpus(b)
	q := qs[0]
	b.Run("reference", func(b *testing.B) {
		e := NewEngineOpts(idxs[0], Options{CacheSize: -1})
		for i := 0; i < b.N; i++ {
			e.SearchReference(q)
		}
	})
	b.Run("sharded-nocache", func(b *testing.B) {
		e := NewEngineOpts(idxs[0], Options{CacheSize: -1})
		for i := 0; i < b.N; i++ {
			e.Search(q)
		}
	})
	b.Run("sharded-cached", func(b *testing.B) {
		e := NewEngineOpts(idxs[0], Options{})
		for i := 0; i < b.N; i++ {
			e.Search(q)
		}
	})
}

// BenchmarkConcurrentManyQueries models HarvestMany / cmd/l2qserve load:
// many goroutines cycling through a shared query pool against one engine.
// The acceptance comparison is reference vs. engine (cache on).
func BenchmarkConcurrentManyQueries(b *testing.B) {
	idxs, qs := benchCorpus(b)
	run := func(b *testing.B, search func([]textproc.Token) []Result) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				search(qs[i%len(qs)])
				i++
			}
		})
	}
	b.Run("reference", func(b *testing.B) {
		e := NewEngineOpts(idxs[0], Options{CacheSize: -1})
		run(b, e.SearchReference)
	})
	b.Run("sharded-nocache", func(b *testing.B) {
		e := NewEngineOpts(idxs[0], Options{CacheSize: -1, ScoreWorkers: 1})
		run(b, e.Search)
	})
	b.Run("engine-cached", func(b *testing.B) {
		e := NewEngineOpts(idxs[0], Options{ScoreWorkers: 1})
		run(b, e.Search)
	})
}
