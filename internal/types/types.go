// Package types implements the type system behind L2Q templates.
//
// A type is a named set of words (Def. 1 in the paper): 〈topic〉 = {hpc,
// "data mining", ai, ...}. The paper sources types from three places
// (§VI-A "Templates"): a knowledge-base dictionary (Freebase + Microsoft
// Academic), NLP named-entity recognizers, and regular expressions for
// well-formed strings (〈email〉, 〈phonenum〉, 〈url〉). This package provides
// all three as Recognizers that can be chained, with the knowledge base
// materialized as an in-memory dictionary (the synthetic-web generator
// exports one covering its vocabulary pools — our stand-in for Freebase).
package types

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Type is the name of a word class, e.g. "topic", "journal", "institute".
// Template strings render a type unit as 〈name〉.
type Type string

// Render returns the template-unit rendering of the type, e.g. "〈topic〉".
func (t Type) Render() string { return "〈" + string(t) + "〉" }

// Recognizer maps a word (term or phrase) to the types it belongs to.
// Implementations must be safe for concurrent use after construction.
type Recognizer interface {
	// TypesOf returns the types of the word, or nil if unrecognized.
	TypesOf(word string) []Type
}

// Dictionary is a knowledge-base-backed Recognizer: an explicit map from
// words and phrases to their types. It is the stand-in for Freebase /
// Microsoft Academic Search in the paper.
type Dictionary struct {
	byWord  map[string][]Type
	phrases []string // multi-word entries, for lexicon construction
}

// NewDictionary creates an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byWord: make(map[string][]Type)}
}

// Add maps a word or phrase to a type. Words are normalized to lowercase.
// Adding the same (word, type) pair twice is a no-op.
func (d *Dictionary) Add(word string, t Type) {
	word = strings.ToLower(strings.TrimSpace(word))
	if word == "" {
		return
	}
	for _, existing := range d.byWord[word] {
		if existing == t {
			return
		}
	}
	if len(d.byWord[word]) == 0 && strings.Contains(word, " ") {
		d.phrases = append(d.phrases, word)
	}
	d.byWord[word] = append(d.byWord[word], t)
}

// AddAll maps every word in words to type t.
func (d *Dictionary) AddAll(t Type, words ...string) {
	for _, w := range words {
		d.Add(w, t)
	}
}

// TypesOf implements Recognizer.
func (d *Dictionary) TypesOf(word string) []Type {
	return d.byWord[word]
}

// Phrases returns all multi-word dictionary entries; feed these to
// textproc.NewLexicon so tokenization keeps phrases intact.
func (d *Dictionary) Phrases() []string {
	out := make([]string, len(d.phrases))
	copy(out, d.phrases)
	return out
}

// Len reports the number of distinct words in the dictionary.
func (d *Dictionary) Len() int { return len(d.byWord) }

// Types returns the sorted set of all types appearing in the dictionary.
func (d *Dictionary) Types() []Type {
	set := make(map[Type]struct{})
	for _, ts := range d.byWord {
		for _, t := range ts {
			set[t] = struct{}{}
		}
	}
	out := make([]Type, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WordsOf returns the sorted words belonging to type t (mostly for tests
// and debugging; recognition goes the other way).
func (d *Dictionary) WordsOf(t Type) []string {
	var out []string
	for w, ts := range d.byWord {
		for _, wt := range ts {
			if wt == t {
				out = append(out, w)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// RegexRecognizer classifies well-formed strings by regular expression,
// mirroring the paper's third option (〈phonenum〉, 〈url〉, 〈email〉).
type RegexRecognizer struct {
	rules []regexRule
}

type regexRule struct {
	t  Type
	re *regexp.Regexp
}

// NewRegexRecognizer returns a recognizer with the paper's well-formed-text
// types plus 〈year〉 and 〈money〉, which the car domain needs for PRICE.
func NewRegexRecognizer() *RegexRecognizer {
	r := &RegexRecognizer{}
	// Rules are anchored: the whole token must match.
	r.MustAdd("email", `[a-z0-9._%+\-]+@[a-z0-9.\-]+\.[a-z]{2,}`)
	r.MustAdd("url", `(https?://)?(www\.)?[a-z0-9\-]+(\.[a-z0-9\-]+)+(/\S*)?`)
	r.MustAdd("phonenum", `(\+?[0-9]{1,3}[\-. ]?)?(\([0-9]{3}\)|[0-9]{3})[\-. ][0-9]{3}[\-. ][0-9]{4}`)
	r.MustAdd("year", `(19|20)[0-9]{2}`)
	r.MustAdd("money", `\$[0-9]+(,[0-9]{3})*(\.[0-9]+)?k?`)
	return r
}

// MustAdd registers a rule, panicking on a bad pattern (programmer error).
func (r *RegexRecognizer) MustAdd(t Type, pattern string) {
	re, err := regexp.Compile(`^(?:` + pattern + `)$`)
	if err != nil {
		panic(fmt.Sprintf("types: bad pattern for %s: %v", t, err))
	}
	r.rules = append(r.rules, regexRule{t: t, re: re})
}

// TypesOf implements Recognizer. A token can match several rules (a bare
// year is both 〈year〉 and part of no other class); all matches are returned
// in registration order.
func (r *RegexRecognizer) TypesOf(word string) []Type {
	var out []Type
	for _, rule := range r.rules {
		if rule.re.MatchString(word) {
			out = append(out, rule.t)
		}
	}
	return out
}

// Chain composes recognizers; the first recognizer that returns a non-nil
// result wins. Put the knowledge-base dictionary before the regex fallback
// so curated types take priority.
type Chain []Recognizer

// TypesOf implements Recognizer.
func (c Chain) TypesOf(word string) []Type {
	for _, r := range c {
		if ts := r.TypesOf(word); len(ts) > 0 {
			return ts
		}
	}
	return nil
}
