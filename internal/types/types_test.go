package types

import (
	"reflect"
	"testing"
)

func TestDictionaryAddAndLookup(t *testing.T) {
	d := NewDictionary()
	d.Add("hpc", "topic")
	d.Add("Data Mining", "topic") // normalized to lowercase
	d.Add("ijhpca", "journal")

	if got := d.TypesOf("hpc"); !reflect.DeepEqual(got, []Type{"topic"}) {
		t.Errorf("TypesOf(hpc) = %v", got)
	}
	if got := d.TypesOf("data mining"); !reflect.DeepEqual(got, []Type{"topic"}) {
		t.Errorf("TypesOf(data mining) = %v", got)
	}
	if got := d.TypesOf("unknown"); got != nil {
		t.Errorf("TypesOf(unknown) = %v, want nil", got)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
}

func TestDictionaryDuplicateAdd(t *testing.T) {
	d := NewDictionary()
	d.Add("hpc", "topic")
	d.Add("hpc", "topic")
	if got := d.TypesOf("hpc"); len(got) != 1 {
		t.Errorf("duplicate add produced %v", got)
	}
	d.Add("hpc", "acronym")
	if got := d.TypesOf("hpc"); len(got) != 2 {
		t.Errorf("multi-type word has %v", got)
	}
}

func TestDictionaryPhrases(t *testing.T) {
	d := NewDictionary()
	d.AddAll("topic", "ai", "data mining", "machine learning")
	got := d.Phrases()
	want := []string{"data mining", "machine learning"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Phrases = %v, want %v", got, want)
	}
}

func TestDictionaryTypesAndWordsOf(t *testing.T) {
	d := NewDictionary()
	d.AddAll("topic", "ai", "hpc")
	d.AddAll("journal", "tkde")
	if got := d.Types(); !reflect.DeepEqual(got, []Type{"journal", "topic"}) {
		t.Errorf("Types = %v", got)
	}
	if got := d.WordsOf("topic"); !reflect.DeepEqual(got, []string{"ai", "hpc"}) {
		t.Errorf("WordsOf(topic) = %v", got)
	}
}

func TestRegexRecognizer(t *testing.T) {
	r := NewRegexRecognizer()
	tests := []struct {
		word string
		want []Type
	}{
		{"snir@illinois.edu", []Type{"email"}}, // '@' keeps it out of the url class
		{"www.edmunds.com", []Type{"url"}},
		{"cs.illinois.edu", []Type{"url"}},
		{"217-333-1234", []Type{"phonenum"}},
		{"2009", []Type{"year"}},
		{"1995", []Type{"year"}},
		{"2150", nil},
		{"$32,500", []Type{"money"}},
		{"$28k", []Type{"money"}},
		{"plain", nil},
	}
	for _, tc := range tests {
		got := r.TypesOf(tc.word)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("TypesOf(%q) = %v, want %v", tc.word, got, tc.want)
		}
	}
}

func TestChainPriority(t *testing.T) {
	d := NewDictionary()
	d.Add("2009", "modelyear") // KB entry should shadow the regex 〈year〉
	c := Chain{d, NewRegexRecognizer()}

	if got := c.TypesOf("2009"); !reflect.DeepEqual(got, []Type{"modelyear"}) {
		t.Errorf("chain TypesOf(2009) = %v", got)
	}
	if got := c.TypesOf("1987"); !reflect.DeepEqual(got, []Type{"year"}) {
		t.Errorf("chain TypesOf(1987) = %v", got)
	}
	if got := c.TypesOf("nothing"); got != nil {
		t.Errorf("chain TypesOf(nothing) = %v", got)
	}
}

func TestTypeRender(t *testing.T) {
	if got := Type("topic").Render(); got != "〈topic〉" {
		t.Errorf("Render = %q", got)
	}
}
