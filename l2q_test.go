package l2q_test

import (
	"testing"

	"l2q"
)

func smallOpts() l2q.SystemOptions {
	return l2q.SystemOptions{NumEntities: 20, PagesPerEntity: 14, Seed: 11}
}

func TestNewSyntheticSystemResearchers(t *testing.T) {
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Corpus().NumEntities() != 20 {
		t.Fatalf("entities = %d", sys.Corpus().NumEntities())
	}
	if len(sys.Aspects()) != 7 {
		t.Fatalf("aspects = %v", sys.Aspects())
	}
	if len(sys.EntityIDs()) != 20 {
		t.Fatal("EntityIDs wrong")
	}
}

func TestEndToEndHarvest(t *testing.T) {
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	ids := sys.EntityIDs()
	dm, err := sys.LearnDomain("RESEARCH", ids[:10])
	if err != nil {
		t.Fatal(err)
	}
	target := sys.Corpus().Entity(ids[len(ids)-1])
	h := sys.NewHarvester(target, "RESEARCH", dm)
	fired := h.Run(l2q.NewL2QBAL(), 3)
	if len(fired) != 3 {
		t.Fatalf("fired %d queries", len(fired))
	}
	if len(h.Pages()) == 0 {
		t.Fatal("no pages harvested")
	}
	rel := 0
	for _, p := range h.Pages() {
		if p.Entity == target.ID && sys.Relevant("RESEARCH", p) {
			rel++
		}
	}
	if rel == 0 {
		t.Fatal("harvest found no relevant pages")
	}
}

func TestBaselinesThroughFacade(t *testing.T) {
	sys, err := l2q.NewSyntheticSystem(l2q.Cars, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	ids := sys.EntityIDs()
	hr, err := sys.TrainHR("SAFETY", ids[:10])
	if err != nil {
		t.Fatal(err)
	}
	target := sys.Corpus().Entity(ids[len(ids)-1])
	for _, sel := range []l2q.Selector{
		l2q.NewLM(), l2q.NewAQ(), l2q.NewHR(hr), l2q.NewMQFor(l2q.Cars, "SAFETY"),
	} {
		h := sys.NewHarvester(target, "SAFETY", nil)
		if fired := h.Run(sel, 2); len(fired) == 0 {
			t.Errorf("%s fired nothing", sel.Name())
		}
	}
	if qs := l2q.ManualQueries(l2q.Cars, "SAFETY"); len(qs) != 5 {
		t.Fatalf("manual queries = %v", qs)
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := l2q.NewSystem(nil, nil, nil, nil, l2q.DefaultConfig()); err == nil {
		t.Fatal("nil corpus accepted")
	}
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2q.NewSystem(sys.Corpus(), nil, nil, nil, l2q.DefaultConfig()); err == nil {
		t.Fatal("no aspects accepted")
	}
	if _, err := l2q.NewSystem(sys.Corpus(), nil, []l2q.Aspect{"NOSUCH"}, nil, l2q.DefaultConfig()); err == nil {
		t.Fatal("untrainable aspect accepted")
	}
}

func TestHarvestMany(t *testing.T) {
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	ids := sys.EntityIDs()
	dm, err := sys.LearnDomain("RESEARCH", ids[:10])
	if err != nil {
		t.Fatal(err)
	}
	results := sys.HarvestMany(ids[10:16], "RESEARCH", dm, l2q.NewL2QBAL(), 2, 3)
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Entity == nil || len(r.Fired) == 0 || len(r.Pages) == 0 {
			t.Fatalf("incomplete result: %+v", r)
		}
	}
}

func TestL2QWeightedStrategy(t *testing.T) {
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	ids := sys.EntityIDs()
	dm, err := sys.LearnDomain("RESEARCH", ids[:10])
	if err != nil {
		t.Fatal(err)
	}
	target := sys.Corpus().Entity(ids[len(ids)-1])
	for _, beta := range []float64{0.2, 0.5, 0.8, -1 /* falls back to 0.5 */} {
		h := sys.NewHarvester(target, "RESEARCH", dm)
		if fired := h.Run(l2q.NewL2QWeighted(beta), 2); len(fired) != 2 {
			t.Fatalf("β=%v fired %d queries", beta, len(fired))
		}
	}
}

func TestDeterministicAcrossSystems(t *testing.T) {
	run := func() []l2q.Query {
		sys, err := l2q.NewSyntheticSystem(l2q.Researchers, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		ids := sys.EntityIDs()
		dm, err := sys.LearnDomain("AWARD", ids[:10])
		if err != nil {
			t.Fatal(err)
		}
		h := sys.NewHarvester(sys.Corpus().Entity(ids[15]), "AWARD", dm)
		return h.Run(l2q.NewL2QP(), 3)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}
